//! BGP message types: OPEN, UPDATE, NOTIFICATION, KEEPALIVE, ROUTE-REFRESH.
//!
//! Messages are plain data; the wire encoding lives in [`crate::wire`].

use crate::attrs::PathAttributes;
use peering_netsim::{Asn, Prefix, TraceId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A capability advertised in an OPEN message (RFC 5492).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capability {
    /// Multiprotocol IPv4 unicast (RFC 4760; afi=1, safi=1).
    MpIpv4Unicast,
    /// Multiprotocol IPv6 unicast (afi=2, safi=1).
    MpIpv6Unicast,
    /// Route refresh (RFC 2918).
    RouteRefresh,
    /// Four-octet AS numbers (RFC 6793) carrying the real ASN.
    FourOctetAsn(Asn),
    /// ADD-PATH for IPv4 unicast (RFC 7911).
    AddPathIpv4 {
        /// Willing to send multiple paths.
        send: bool,
        /// Willing to receive multiple paths.
        receive: bool,
    },
    /// Graceful restart (RFC 4724): the speaker can preserve forwarding
    /// across a control-plane restart; the peer should retain stale paths
    /// for up to `restart_time_s` seconds.
    GracefulRestart {
        /// Restart time in seconds (12-bit field on the wire).
        restart_time_s: u16,
    },
}

/// The OPEN message (RFC 4271 §4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenMessage {
    /// Protocol version, always 4.
    pub version: u8,
    /// The 2-octet "My Autonomous System" field; AS_TRANS (23456) when the
    /// real ASN needs four octets.
    pub my_as2: u16,
    /// Proposed hold time in seconds (0 or >= 3).
    pub hold_time: u16,
    /// BGP identifier (router ID).
    pub router_id: Ipv4Addr,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// Build an OPEN for `asn` with standard capabilities.
    pub fn new(asn: Asn, hold_time: u16, router_id: Ipv4Addr) -> Self {
        OpenMessage {
            version: 4,
            my_as2: if asn.0 <= u16::MAX as u32 {
                asn.0 as u16
            } else {
                23456 // AS_TRANS
            },
            hold_time,
            router_id,
            capabilities: vec![
                Capability::MpIpv4Unicast,
                Capability::RouteRefresh,
                Capability::FourOctetAsn(asn),
            ],
        }
    }

    /// Enable ADD-PATH send/receive on this OPEN.
    pub fn with_add_path(mut self, send: bool, receive: bool) -> Self {
        self.capabilities
            .push(Capability::AddPathIpv4 { send, receive });
        self
    }

    /// Advertise graceful restart with the given restart time.
    pub fn with_graceful_restart(mut self, restart_time_s: u16) -> Self {
        self.capabilities
            .push(Capability::GracefulRestart { restart_time_s });
        self
    }

    /// The effective ASN: the 4-octet capability value if present,
    /// otherwise the 2-octet field.
    pub fn asn(&self) -> Asn {
        for c in &self.capabilities {
            if let Capability::FourOctetAsn(a) = c {
                return *a;
            }
        }
        Asn(self.my_as2 as u32)
    }

    /// The graceful-restart time offered by this OPEN, if the capability
    /// is present.
    pub fn graceful_restart(&self) -> Option<u16> {
        for c in &self.capabilities {
            if let Capability::GracefulRestart { restart_time_s } = c {
                return Some(*restart_time_s);
            }
        }
        None
    }

    /// The negotiated ADD-PATH directions offered by this OPEN.
    pub fn add_path(&self) -> (bool, bool) {
        for c in &self.capabilities {
            if let Capability::AddPathIpv4 { send, receive } = c {
                return (*send, *receive);
            }
        }
        (false, false)
    }
}

/// A piece of NLRI: a prefix, optionally tagged with an ADD-PATH path ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Nlri {
    /// The announced or withdrawn prefix.
    pub prefix: Prefix,
    /// ADD-PATH identifier; `None` when ADD-PATH is not in use.
    pub path_id: Option<u32>,
}

impl Nlri {
    /// NLRI without a path ID.
    pub fn plain(prefix: Prefix) -> Self {
        Nlri {
            prefix,
            path_id: None,
        }
    }

    /// NLRI carrying an ADD-PATH identifier.
    pub fn with_path_id(prefix: Prefix, id: u32) -> Self {
        Nlri {
            prefix,
            path_id: Some(id),
        }
    }
}

impl fmt::Display for Nlri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.path_id {
            Some(id) => write!(f, "{} (path-id {id})", self.prefix),
            None => write!(f, "{}", self.prefix),
        }
    }
}

/// The UPDATE message (RFC 4271 §4.3).
///
/// Attributes are reference-counted: a speaker fanning one route out to
/// hundreds of sessions shares a single attribute allocation, exactly the
/// sharing whose absence would blow up the Figure 2 memory curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateMessage {
    /// Withdrawn routes.
    pub withdrawn: Vec<Nlri>,
    /// Attributes applying to every prefix in `announced`.
    pub attrs: Option<Arc<PathAttributes>>,
    /// Announced routes.
    pub announced: Vec<Nlri>,
    /// Provenance id of the originated change this update descends from.
    ///
    /// Out-of-band metadata: it never touches the wire encoding and is
    /// excluded from equality, so carrying it cannot perturb protocol
    /// behaviour. The route collector keys propagation DAGs on it.
    pub trace: Option<TraceId>,
}

// Equality deliberately ignores `trace`: two updates that would be
// byte-identical on the wire are the same message regardless of the
// observational provenance riding along.
impl PartialEq for UpdateMessage {
    fn eq(&self, other: &Self) -> bool {
        self.withdrawn == other.withdrawn
            && self.attrs == other.attrs
            && self.announced == other.announced
    }
}

impl UpdateMessage {
    /// An update announcing `nlri` with `attrs`.
    pub fn announce(attrs: Arc<PathAttributes>, nlri: Vec<Nlri>) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            announced: nlri,
            trace: None,
        }
    }

    /// An update withdrawing `nlri`.
    pub fn withdraw(nlri: Vec<Nlri>) -> Self {
        UpdateMessage {
            withdrawn: nlri,
            attrs: None,
            announced: Vec::new(),
            trace: None,
        }
    }

    /// Tag the update with a provenance id.
    pub fn with_trace(mut self, trace: Option<TraceId>) -> Self {
        self.trace = trace;
        self
    }

    /// True when the update carries nothing (End-of-RIB marker).
    pub fn is_end_of_rib(&self) -> bool {
        self.withdrawn.is_empty() && self.announced.is_empty() && self.attrs.is_none()
    }
}

/// NOTIFICATION error codes (RFC 4271 §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotifCode {
    /// Malformed header.
    MessageHeaderError,
    /// Problem in an OPEN message.
    OpenMessageError,
    /// Problem in an UPDATE message.
    UpdateMessageError,
    /// Hold timer expired without a message.
    HoldTimerExpired,
    /// Event not allowed in the current FSM state.
    FsmError,
    /// Administrative shutdown / reset and friends.
    Cease,
}

impl NotifCode {
    /// Wire code per RFC 4271.
    pub fn code(self) -> u8 {
        match self {
            NotifCode::MessageHeaderError => 1,
            NotifCode::OpenMessageError => 2,
            NotifCode::UpdateMessageError => 3,
            NotifCode::HoldTimerExpired => 4,
            NotifCode::FsmError => 5,
            NotifCode::Cease => 6,
        }
    }

    /// Decode from the wire code.
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            1 => NotifCode::MessageHeaderError,
            2 => NotifCode::OpenMessageError,
            3 => NotifCode::UpdateMessageError,
            4 => NotifCode::HoldTimerExpired,
            5 => NotifCode::FsmError,
            6 => NotifCode::Cease,
            _ => return None,
        })
    }
}

/// The NOTIFICATION message: fatal error, close the session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotificationMessage {
    /// Error class.
    pub code: NotifCode,
    /// Error detail within the class.
    pub subcode: u8,
    /// Diagnostic bytes.
    pub data: Vec<u8>,
}

impl NotificationMessage {
    /// Build a notification.
    pub fn new(code: NotifCode, subcode: u8) -> Self {
        NotificationMessage {
            code,
            subcode,
            data: Vec::new(),
        }
    }
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BgpMessage {
    /// Session establishment offer.
    Open(OpenMessage),
    /// Route announcements and withdrawals.
    Update(UpdateMessage),
    /// Fatal error, closes the session.
    Notification(NotificationMessage),
    /// Liveness probe.
    Keepalive,
    /// Request to re-advertise (RFC 2918), afi/safi implied v4 unicast.
    RouteRefresh,
}

impl BgpMessage {
    /// Approximate wire size in bytes (used for link transmission cost
    /// without forcing an encode on the hot path).
    pub fn approx_size(&self) -> usize {
        match self {
            BgpMessage::Open(o) => 29 + o.capabilities.len() * 8,
            BgpMessage::Update(u) => {
                23 + u.withdrawn.len() * 9
                    + u.announced.len() * 9
                    + u.attrs
                        .as_ref()
                        .map(|a| 40 + a.as_path.hop_count() as usize * 4 + a.communities.len() * 4)
                        .unwrap_or(0)
            }
            BgpMessage::Notification(n) => 21 + n.data.len(),
            BgpMessage::Keepalive => 19,
            BgpMessage::RouteRefresh => 23,
        }
    }

    /// Short tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            BgpMessage::Open(_) => "OPEN",
            BgpMessage::Update(_) => "UPDATE",
            BgpMessage::Notification(_) => "NOTIFICATION",
            BgpMessage::Keepalive => "KEEPALIVE",
            BgpMessage::RouteRefresh => "ROUTE-REFRESH",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;

    #[test]
    fn open_two_octet_asn() {
        let o = OpenMessage::new(Asn(65000), 90, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(o.my_as2, 65000);
        assert_eq!(o.asn(), Asn(65000));
        assert_eq!(o.version, 4);
    }

    #[test]
    fn open_four_octet_asn_uses_as_trans() {
        let o = OpenMessage::new(Asn(4_200_000_001), 90, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(o.my_as2, 23456);
        assert_eq!(o.asn(), Asn(4_200_000_001));
    }

    #[test]
    fn open_add_path_negotiation() {
        let o = OpenMessage::new(Asn(1), 90, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(o.add_path(), (false, false));
        let o = o.with_add_path(true, false);
        assert_eq!(o.add_path(), (true, false));
    }

    #[test]
    fn update_constructors_and_eor() {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            ..Default::default()
        });
        let ann = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        assert!(!ann.is_end_of_rib());
        assert_eq!(ann.announced.len(), 1);
        let wd = UpdateMessage::withdraw(vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        assert!(!wd.is_end_of_rib());
        let eor = UpdateMessage {
            withdrawn: vec![],
            attrs: None,
            announced: vec![],
            trace: None,
        };
        assert!(eor.is_end_of_rib());
    }

    #[test]
    fn open_graceful_restart_capability() {
        let o = OpenMessage::new(Asn(1), 90, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(o.graceful_restart(), None);
        let o = o.with_graceful_restart(120);
        assert_eq!(o.graceful_restart(), Some(120));
    }

    #[test]
    fn nlri_display() {
        let p = Prefix::v4(192, 0, 2, 0, 24);
        assert_eq!(Nlri::plain(p).to_string(), "192.0.2.0/24");
        assert_eq!(
            Nlri::with_path_id(p, 7).to_string(),
            "192.0.2.0/24 (path-id 7)"
        );
    }

    #[test]
    fn notif_code_roundtrip() {
        for c in [
            NotifCode::MessageHeaderError,
            NotifCode::OpenMessageError,
            NotifCode::UpdateMessageError,
            NotifCode::HoldTimerExpired,
            NotifCode::FsmError,
            NotifCode::Cease,
        ] {
            assert_eq!(NotifCode::from_code(c.code()), Some(c));
        }
        assert_eq!(NotifCode::from_code(0), None);
        assert_eq!(NotifCode::from_code(7), None);
    }

    #[test]
    fn message_kinds_and_sizes() {
        assert_eq!(BgpMessage::Keepalive.kind(), "KEEPALIVE");
        assert_eq!(BgpMessage::Keepalive.approx_size(), 19);
        let n = BgpMessage::Notification(NotificationMessage::new(NotifCode::Cease, 2));
        assert_eq!(n.kind(), "NOTIFICATION");
        assert!(n.approx_size() >= 21);
    }
}
