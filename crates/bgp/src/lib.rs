//! A from-scratch BGP-4 implementation.
//!
//! PEERING servers run software routers (Quagga today, BIRD planned) to
//! hold eBGP sessions with real peers while giving hosted experiments full
//! control over announcements. This crate is the reproduction's software
//! router: a complete, deterministic BGP implementation designed to run
//! inside the discrete-event simulation.
//!
//! What is implemented, mirroring the feature set the paper relies on:
//!
//! * **Wire protocol** (RFC 4271): OPEN / UPDATE / NOTIFICATION /
//!   KEEPALIVE encoding and decoding, path attributes, capabilities
//!   (4-octet ASN per RFC 6793, ADD-PATH per RFC 7911, multiprotocol v6
//!   per RFC 4760 in the minimal form the testbed needs).
//! * **Session FSM** (RFC 4271 §8) with hold/keepalive/connect-retry
//!   timers, collision-free because the transport is simulated.
//! * **RIBs**: per-peer Adj-RIB-In and Adj-RIB-Out plus a Loc-RIB, with
//!   shared (interned) path attributes so table memory matches how real
//!   implementations behave — this is what Figure 2 measures.
//! * **Decision process** (RFC 4271 §9.1): local-pref, AS-path length,
//!   origin, MED, eBGP-over-iBGP, IGP cost, router-id tiebreak.
//! * **Policy engine**: route-maps with prefix/AS-path/community matches
//!   and set/prepend/community actions, applied on import and export.
//! * **Route-flap damping** (RFC 2439), which PEERING applies to protect
//!   peers from experiment churn.
//! * **Route-server mode** (RFC 7947): transparent AS-path and next-hop,
//!   used by the IXP crate's multilateral route server.
//! * **ADD-PATH** (RFC 7911), the mechanism the paper proposes for
//!   multiplexing many upstream sessions over one client session (the
//!   "BIRD" mux design).
//! * **Deep memory accounting** for reproducing Figure 2.

pub mod attrs;
pub mod damping;
pub mod decision;
pub mod error;
pub mod fsm;
pub mod mem;
pub mod message;
pub mod policy;
pub mod provenance;
pub mod rib;
pub mod speaker;
pub mod wire;

pub use attrs::{AsPath, AsPathSegment, Community, Origin, PathAttributes};
pub use damping::{DampingConfig, DampingState};
pub use decision::{compare_routes, DecisionConfig};
pub use error::BgpError;
pub use fsm::{ConnectRetryConfig, FsmState, Negotiated, Session, SessionConfig, SessionEvent};
pub use mem::DeepSize;
pub use message::{
    BgpMessage, Capability, Nlri, NotifCode, NotificationMessage, OpenMessage, UpdateMessage,
};
pub use policy::{Action, DefaultVerdict, Match, Policy, PolicyRule};
pub use provenance::{
    ExportVerdict, ImportVerdict, ProvenanceEvent, ProvenanceLog, ProvenanceRecord,
};
pub use rib::{AdjRibIn, AdjRibOut, AttrInterner, LocRib, PeerId, Route, RouteSource};
pub use speaker::{
    MaxPrefixConfig, Output, PeerConfig, Speaker, SpeakerConfig, SpeakerEvent, SpeakerMode,
};

// Re-export the substrate identifiers so downstream crates can use one path.
pub use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix, TraceId};
