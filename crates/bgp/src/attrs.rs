//! BGP path attributes: ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF,
//! ATOMIC_AGGREGATE, AGGREGATOR, COMMUNITY.
//!
//! `PathAttributes` is the unit PEERING clients manipulate to control
//! interdomain routing: prepending and poisoning edit the AS_PATH,
//! communities steer which peers an announcement reaches, and MED /
//! LOCAL_PREF drive the decision process.

use peering_netsim::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The ORIGIN attribute (type 1). Lower is preferred by the decision
/// process: IGP < EGP < INCOMPLETE.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Origin {
    /// Learned from an interior protocol (`i`).
    #[default]
    Igp,
    /// Learned via EGP (`e`, historical).
    Egp,
    /// Redistributed / unknown (`?`).
    Incomplete,
}

impl Origin {
    /// Wire encoding per RFC 4271.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decode from the wire value.
    pub fn from_code(c: u8) -> Option<Origin> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "i"),
            Origin::Egp => write!(f, "e"),
            Origin::Incomplete => write!(f, "?"),
        }
    }
}

/// One segment of an AS_PATH.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// Ordered sequence of traversed ASes (most recent first).
    Sequence(Vec<Asn>),
    /// Unordered set produced by aggregation; counts as one hop.
    Set(Vec<Asn>),
}

impl AsPathSegment {
    fn hop_count(&self) -> u32 {
        match self {
            AsPathSegment::Sequence(v) => v.len() as u32,
            AsPathSegment::Set(_) => 1,
        }
    }
}

/// The AS_PATH attribute (type 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AsPath {
    /// Path segments, head (most recently prepended) first.
    pub segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// The empty path (a locally originated route).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A pure sequence path, first element = most recent AS.
    pub fn from_asns(asns: &[Asn]) -> Self {
        if asns.is_empty() {
            return AsPath::empty();
        }
        AsPath {
            segments: vec![AsPathSegment::Sequence(asns.to_vec())],
        }
    }

    /// Prepend `asn` `n` times (announcement traffic engineering).
    pub fn prepend(&mut self, asn: Asn, n: usize) {
        if n == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(seq)) => {
                for _ in 0..n {
                    seq.insert(0, asn);
                }
            }
            _ => {
                self.segments
                    .insert(0, AsPathSegment::Sequence(vec![asn; n]));
            }
        }
    }

    /// Path length as used by the decision process (sets count 1).
    pub fn hop_count(&self) -> u32 {
        self.segments.iter().map(AsPathSegment::hop_count).sum()
    }

    /// True if `asn` appears anywhere in the path (loop detection, and the
    /// primitive behind LIFEGUARD-style poisoning: an AS that sees itself
    /// in the path discards the route).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| match s {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.contains(&asn),
        })
    }

    /// The origin AS (rightmost), if the path is non-empty.
    pub fn origin_as(&self) -> Option<Asn> {
        for seg in self.segments.iter().rev() {
            match seg {
                AsPathSegment::Sequence(v) => {
                    if let Some(a) = v.last() {
                        return Some(*a);
                    }
                }
                AsPathSegment::Set(v) => {
                    if let Some(a) = v.first() {
                        return Some(*a);
                    }
                }
            }
        }
        None
    }

    /// The neighbor AS (leftmost), if the path is non-empty.
    pub fn first_as(&self) -> Option<Asn> {
        for seg in &self.segments {
            match seg {
                AsPathSegment::Sequence(v) => {
                    if let Some(a) = v.first() {
                        return Some(*a);
                    }
                }
                AsPathSegment::Set(v) => {
                    if let Some(a) = v.first() {
                        return Some(*a);
                    }
                }
            }
        }
        None
    }

    /// All ASNs in order of appearance (sets flattened in stored order).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| match s {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.iter().copied(),
        })
    }

    /// Remove private ASNs from the path, as PEERING does when emulated
    /// domains use private ASNs "behind" the public PEERING ASN.
    pub fn strip_private(&mut self) {
        for seg in &mut self.segments {
            match seg {
                AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => {
                    v.retain(|a| !a.is_private());
                }
            }
        }
        self.segments.retain(|s| match s {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => !v.is_empty(),
        });
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsPathSegment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsPathSegment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// A standard community (RFC 1997): 16-bit ASN, 16-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Community(pub u32);

impl Community {
    /// Well-known NO_EXPORT.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// Well-known NO_ADVERTISE.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// Well-known NO_EXPORT_SUBCONFED.
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);

    /// Build from `asn:value` halves.
    pub const fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits (conventionally an ASN).
    pub fn asn(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits.
    pub fn value(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// True for the RFC 1997 well-known range.
    pub fn is_well_known(self) -> bool {
        self.asn() == 0xFFFF
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Community::NO_EXPORT => write!(f, "no-export"),
            Community::NO_ADVERTISE => write!(f, "no-advertise"),
            Community::NO_EXPORT_SUBCONFED => write!(f, "no-export-subconfed"),
            c => write!(f, "{}:{}", c.asn(), c.value()),
        }
    }
}

/// The full set of path attributes carried with a route.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN (mandatory).
    pub origin: Origin,
    /// AS_PATH (mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (mandatory for v4 unicast).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC (optional).
    pub med: Option<u32>,
    /// LOCAL_PREF (iBGP / route-server contexts).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE flag.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (optional): aggregating AS and router.
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// COMMUNITY values, kept sorted and deduplicated.
    pub communities: Vec<Community>,
}

impl Default for PathAttributes {
    fn default() -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: Ipv4Addr::UNSPECIFIED,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
        }
    }
}

impl PathAttributes {
    /// Attributes for a locally originated route with the given next hop.
    pub fn originate(next_hop: Ipv4Addr) -> Self {
        PathAttributes {
            next_hop,
            ..Default::default()
        }
    }

    /// Add a community, keeping the list sorted and unique.
    pub fn add_community(&mut self, c: Community) {
        if let Err(pos) = self.communities.binary_search(&c) {
            self.communities.insert(pos, c);
        }
    }

    /// Remove a community if present.
    pub fn remove_community(&mut self, c: Community) {
        if let Ok(pos) = self.communities.binary_search(&c) {
            self.communities.remove(pos);
        }
    }

    /// True if the community is attached.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.binary_search(&c).is_ok()
    }

    /// Effective local preference (RFC default 100 when unset).
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_roundtrip_and_order() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
        assert_eq!(Origin::Incomplete.to_string(), "?");
    }

    #[test]
    fn as_path_construction_and_length() {
        let p = AsPath::from_asns(&[Asn(3), Asn(2), Asn(1)]);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.origin_as(), Some(Asn(1)));
        assert_eq!(p.first_as(), Some(Asn(3)));
        assert!(p.contains(Asn(2)));
        assert!(!p.contains(Asn(9)));
        assert_eq!(p.to_string(), "3 2 1");
        assert_eq!(AsPath::empty().hop_count(), 0);
        assert_eq!(AsPath::empty().origin_as(), None);
        assert_eq!(AsPath::from_asns(&[]), AsPath::empty());
    }

    #[test]
    fn prepend_extends_head() {
        let mut p = AsPath::from_asns(&[Asn(2), Asn(1)]);
        p.prepend(Asn(5), 3);
        assert_eq!(p.to_string(), "5 5 5 2 1");
        assert_eq!(p.hop_count(), 5);
        assert_eq!(p.first_as(), Some(Asn(5)));
        assert_eq!(p.origin_as(), Some(Asn(1)));
        p.prepend(Asn(7), 0);
        assert_eq!(p.hop_count(), 5);
    }

    #[test]
    fn prepend_onto_empty_and_onto_set() {
        let mut p = AsPath::empty();
        p.prepend(Asn(9), 1);
        assert_eq!(p.to_string(), "9");
        let mut q = AsPath {
            segments: vec![AsPathSegment::Set(vec![Asn(1), Asn(2)])],
        };
        q.prepend(Asn(9), 2);
        assert_eq!(q.to_string(), "9 9 {1,2}");
        assert_eq!(q.hop_count(), 3); // set counts as one hop
    }

    #[test]
    fn set_segment_semantics() {
        let p = AsPath {
            segments: vec![
                AsPathSegment::Sequence(vec![Asn(10)]),
                AsPathSegment::Set(vec![Asn(1), Asn(2), Asn(3)]),
            ],
        };
        assert_eq!(p.hop_count(), 2);
        assert!(p.contains(Asn(2)));
        assert_eq!(p.origin_as(), Some(Asn(1)));
        assert_eq!(p.asns().count(), 4);
    }

    #[test]
    fn strip_private_removes_emulated_domains() {
        // An emulated domain behind PEERING uses private ASN 65001.
        let mut p = AsPath::from_asns(&[Asn(47065), Asn(65001), Asn(65002)]);
        p.strip_private();
        assert_eq!(p.to_string(), "47065");
        // A path of only private ASNs becomes empty.
        let mut q = AsPath::from_asns(&[Asn(65001)]);
        q.strip_private();
        assert_eq!(q, AsPath::empty());
    }

    #[test]
    fn community_halves_and_well_known() {
        let c = Community::new(47065, 100);
        assert_eq!(c.asn(), 47065);
        assert_eq!(c.value(), 100);
        assert_eq!(c.to_string(), "47065:100");
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(!c.is_well_known());
        assert_eq!(Community::NO_EXPORT.to_string(), "no-export");
    }

    #[test]
    fn attrs_community_set_semantics() {
        let mut a = PathAttributes::default();
        a.add_community(Community::new(1, 2));
        a.add_community(Community::new(1, 1));
        a.add_community(Community::new(1, 2)); // duplicate ignored
        assert_eq!(a.communities.len(), 2);
        assert!(a.communities.windows(2).all(|w| w[0] < w[1]));
        assert!(a.has_community(Community::new(1, 1)));
        a.remove_community(Community::new(1, 1));
        assert!(!a.has_community(Community::new(1, 1)));
        a.remove_community(Community::new(9, 9)); // absent: no-op
        assert_eq!(a.communities.len(), 1);
    }

    #[test]
    fn default_local_pref_is_100() {
        let a = PathAttributes::default();
        assert_eq!(a.effective_local_pref(), 100);
        let b = PathAttributes {
            local_pref: Some(200),
            ..Default::default()
        };
        assert_eq!(b.effective_local_pref(), 200);
    }
}
