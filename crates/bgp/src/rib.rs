//! Routing information bases: per-peer Adj-RIB-In / Adj-RIB-Out and the
//! Loc-RIB, plus the shared-attribute interner.
//!
//! A PEERING server holds a full Adj-RIB-In per upstream peer — at AMS-IX
//! that is hundreds of tables — and per-client Adj-RIB-Outs. Figure 2 of
//! the paper measures exactly this: how much memory one router's tables
//! consume as peers × routes grow. The interner reproduces the attribute
//! sharing real BGP implementations rely on to keep that curve sane.

use crate::attrs::PathAttributes;
use peering_netsim::{Prefix, PrefixTrie, SimTime, TraceId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identifies a BGP peer within one speaker.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Pseudo-peer for locally originated routes.
    pub const LOCAL: PeerId = PeerId(u32::MAX);
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PeerId::LOCAL {
            write!(f, "local")
        } else {
            write!(f, "peer{}", self.0)
        }
    }
}

/// Where a route was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteSource {
    /// From an external peer.
    Ebgp,
    /// From an internal peer.
    Ibgp,
    /// Locally originated (static / redistributed).
    Local,
}

/// A route: a prefix plus its path attributes and bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Shared path attributes.
    pub attrs: Arc<PathAttributes>,
    /// The peer this route was learned from ([`PeerId::LOCAL`] if local).
    pub peer: PeerId,
    /// ADD-PATH identifier (0 when unused).
    pub path_id: u32,
    /// eBGP / iBGP / local.
    pub source: RouteSource,
    /// IGP cost to the next hop (decision-process step).
    pub igp_cost: u32,
    /// When the route was installed.
    pub learned_at: SimTime,
    /// Provenance id of the originated change this route descends from.
    /// Minted deterministically at origination and carried through every
    /// RIB so the collector can rebuild per-prefix propagation DAGs; it
    /// plays no part in the decision process or convergence digests.
    pub trace: Option<TraceId>,
}

// Equality deliberately ignores `trace`: a route is defined by what BGP
// exchanged and decided, not by the observational provenance riding along.
impl PartialEq for Route {
    fn eq(&self, other: &Self) -> bool {
        self.prefix == other.prefix
            && self.attrs == other.attrs
            && self.peer == other.peer
            && self.path_id == other.path_id
            && self.source == other.source
            && self.igp_cost == other.igp_cost
            && self.learned_at == other.learned_at
    }
}

impl Route {
    /// A locally originated route.
    pub fn local(prefix: Prefix, attrs: Arc<PathAttributes>, now: SimTime) -> Self {
        Route {
            prefix,
            attrs,
            peer: PeerId::LOCAL,
            path_id: 0,
            source: RouteSource::Local,
            igp_cost: 0,
            learned_at: now,
            trace: None,
        }
    }

    /// Tag the route with a provenance id.
    pub fn with_trace(mut self, trace: Option<TraceId>) -> Self {
        self.trace = trace;
        self
    }
}

/// One peer's Adj-RIB (used for both In and Out directions): the set of
/// routes exchanged with that peer, keyed by prefix and ADD-PATH id.
///
/// Both levels are `BTreeMap` so every iteration surface
/// ([`iter`](Self::iter), [`prefixes`](Self::prefixes),
/// [`clear`](Self::clear)) yields prefix-then-path-id order — a
/// determinism-contract requirement (`nd-hash-iter`): Adj-RIB walks
/// feed digests, MRT dumps, and the decision process.
#[derive(Debug, Clone, Default)]
pub struct AdjRib {
    routes: BTreeMap<Prefix, BTreeMap<u32, Route>>,
    entries: usize,
}

/// Adj-RIB-In: routes learned from a peer, after import policy.
pub type AdjRibIn = AdjRib;
/// Adj-RIB-Out: routes advertised to a peer, after export policy.
pub type AdjRibOut = AdjRib;

impl AdjRib {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a route (keyed by `prefix` + `path_id`).
    pub fn insert(&mut self, route: Route) -> Option<Route> {
        let old = self
            .routes
            .entry(route.prefix)
            .or_default()
            .insert(route.path_id, route);
        if old.is_none() {
            self.entries += 1;
        }
        old
    }

    /// Remove one path for a prefix.
    pub fn remove(&mut self, prefix: &Prefix, path_id: u32) -> Option<Route> {
        let paths = self.routes.get_mut(prefix)?;
        let old = paths.remove(&path_id);
        if old.is_some() {
            self.entries -= 1;
            if paths.is_empty() {
                self.routes.remove(prefix);
            }
        }
        old
    }

    /// Remove every path for a prefix (plain withdraw).
    pub fn remove_prefix(&mut self, prefix: &Prefix) -> Vec<Route> {
        match self.routes.remove(prefix) {
            Some(paths) => {
                self.entries -= paths.len();
                paths.into_values().collect()
            }
            None => Vec::new(),
        }
    }

    /// All paths currently held for a prefix.
    pub fn paths(&self, prefix: &Prefix) -> impl Iterator<Item = &Route> {
        self.routes.get(prefix).into_iter().flat_map(|m| m.values())
    }

    /// A specific path.
    pub fn get(&self, prefix: &Prefix, path_id: u32) -> Option<&Route> {
        self.routes.get(prefix)?.get(&path_id)
    }

    /// All `(prefix, route)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.values().flat_map(|m| m.values())
    }

    /// Distinct prefixes present.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.routes.keys()
    }

    /// Number of `(prefix, path)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no routes are held.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct prefixes.
    pub fn prefix_count(&self) -> usize {
        self.routes.len()
    }

    /// Drop everything, returning the affected prefixes (for re-decision).
    pub fn clear(&mut self) -> Vec<Prefix> {
        let prefixes: Vec<Prefix> = self.routes.keys().copied().collect();
        self.routes.clear();
        self.entries = 0;
        prefixes
    }

    /// Structural invariants of the table. Called behind `debug_assert!`
    /// by the speaker after RIB mutations; returns the first violated
    /// invariant as text so failures are self-describing.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0;
        for (prefix, paths) in &self.routes {
            if paths.is_empty() {
                return Err(format!("empty path map retained for {prefix}"));
            }
            for (path_id, route) in paths {
                if route.prefix != *prefix {
                    return Err(format!(
                        "route keyed under {prefix} carries prefix {}",
                        route.prefix
                    ));
                }
                if route.path_id != *path_id {
                    return Err(format!(
                        "route keyed under path id {path_id} carries id {}",
                        route.path_id
                    ));
                }
                counted += 1;
            }
        }
        if counted != self.entries {
            return Err(format!(
                "entry counter {} disagrees with stored routes {counted}",
                self.entries
            ));
        }
        Ok(())
    }
}

/// The Loc-RIB: the best route per prefix after the decision process.
///
/// Backed by a binary radix trie ([`PrefixTrie`]) so exact lookup,
/// longest-prefix match, and covered-range walks are `O(prefix length)`
/// instead of map scans at full-table scale. The trie's preorder
/// iteration equals the old `BTreeMap<Prefix, Route>` order bit for bit,
/// so [`iter`](Self::iter) — the source of convergence digests and
/// collector RIB dumps (`nd-hash-iter` contract) — is unchanged.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    best: PrefixTrie<Route>,
}

impl LocRib {
    /// Create an empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `route` as best for its prefix, returning the previous best.
    pub fn set_best(&mut self, route: Route) -> Option<Route> {
        self.best.insert(route.prefix, route)
    }

    /// Remove the best route for a prefix.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<Route> {
        self.best.remove(prefix)
    }

    /// The best route for a prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&Route> {
        self.best.get(prefix)
    }

    /// The most specific best route covering `addr`.
    pub fn longest_match(&self, addr: std::net::IpAddr) -> Option<&Route> {
        self.best.longest_match(addr).map(|(_, r)| r)
    }

    /// All best routes covered by `prefix` (including the exact entry),
    /// in prefix order.
    pub fn covered<'a>(&'a self, prefix: &Prefix) -> impl Iterator<Item = &'a Route> {
        self.best.covered(prefix).map(|(_, r)| r)
    }

    /// All best routes whose prefix covers `prefix`, shortest first.
    pub fn covering(&self, prefix: &Prefix) -> Vec<&Route> {
        self.best
            .covering(prefix)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// All best routes, in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.best.values()
    }

    /// Number of prefixes with a best route.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Trie nodes backing the table (memory accounting).
    pub fn node_count(&self) -> usize {
        self.best.node_count()
    }

    /// Bytes held in trie nodes (memory accounting, excluding allocator
    /// headers).
    pub fn node_bytes(&self) -> usize {
        self.best.node_bytes()
    }

    /// Structural invariants: every best route is stored under its own
    /// prefix.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (prefix, route) in self.best.iter() {
            if route.prefix != prefix {
                return Err(format!(
                    "best route keyed under {prefix} carries prefix {}",
                    route.prefix
                ));
            }
        }
        Ok(())
    }
}

/// Interns path attributes so identical attribute sets share one
/// allocation across RIB entries and sessions.
///
/// Disabling interning (`AttrInterner::disabled`) is the ablation for the
/// Figure 2 experiment: every route then carries a private copy, which is
/// how a naive implementation's memory curve would look.
#[derive(Debug, Default)]
pub struct AttrInterner {
    buckets: HashMap<u64, Vec<Arc<PathAttributes>>>,
    enabled: bool,
    /// Times an existing allocation was reused.
    pub hits: u64,
    /// Times a new allocation was created.
    pub misses: u64,
}

impl AttrInterner {
    /// A working interner.
    pub fn new() -> Self {
        AttrInterner {
            enabled: true,
            ..Default::default()
        }
    }

    /// An interner that always allocates (ablation mode).
    pub fn disabled() -> Self {
        AttrInterner {
            enabled: false,
            ..Default::default()
        }
    }

    /// Whether interning is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn hash(attrs: &PathAttributes) -> u64 {
        let mut h = DefaultHasher::new();
        attrs.hash(&mut h);
        h.finish()
    }

    /// Return a shared allocation equal to `attrs`.
    pub fn intern(&mut self, attrs: PathAttributes) -> Arc<PathAttributes> {
        if !self.enabled {
            self.misses += 1;
            return Arc::new(attrs);
        }
        let key = Self::hash(&attrs);
        let bucket = self.buckets.entry(key).or_default();
        for existing in bucket.iter() {
            if **existing == attrs {
                self.hits += 1;
                return Arc::clone(existing);
            }
        }
        self.misses += 1;
        let arc = Arc::new(attrs);
        bucket.push(Arc::clone(&arc));
        arc
    }

    /// Like [`intern`](Self::intern) but starts from an existing Arc,
    /// avoiding a clone when it is already the canonical allocation.
    pub fn intern_arc(&mut self, attrs: Arc<PathAttributes>) -> Arc<PathAttributes> {
        if !self.enabled {
            return attrs;
        }
        let key = Self::hash(&attrs);
        let bucket = self.buckets.entry(key).or_default();
        for existing in bucket.iter() {
            if Arc::ptr_eq(existing, &attrs) || **existing == *attrs {
                self.hits += 1;
                return Arc::clone(existing);
            }
        }
        self.misses += 1;
        bucket.push(Arc::clone(&attrs));
        attrs
    }

    /// Drop interned entries no longer referenced anywhere else.
    pub fn gc(&mut self) -> usize {
        let mut freed = 0;
        // peering-analysis: allow(nd-hash-iter, reason = "retain visits every bucket exactly once; per-bucket decisions depend only on refcounts, so visit order cannot alter the surviving set")
        self.buckets.retain(|_, bucket| {
            bucket.retain(|arc| {
                let keep = Arc::strong_count(arc) > 1;
                if !keep {
                    freed += 1;
                }
                keep
            });
            !bucket.is_empty()
        });
        freed
    }

    /// Number of distinct attribute sets currently interned.
    pub fn len(&self) -> usize {
        // peering-analysis: allow(nd-hash-iter, reason = "order-insensitive integer sum of bucket sizes; iteration order cannot reach the result")
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterate the interned attribute sets (for memory accounting).
    /// Order is unspecified: the sole consumer is `DeepSize`, an
    /// order-insensitive byte sum that never reaches a digest.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<PathAttributes>> {
        // peering-analysis: allow(nd-hash-iter, reason = "memory-accounting walk; consumers sum per-entry byte charges, an order-insensitive reduction")
        self.buckets.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use peering_netsim::Asn;

    fn route(prefix: Prefix, path_id: u32, first_as: u32) -> Route {
        Route {
            prefix,
            attrs: Arc::new(PathAttributes {
                as_path: AsPath::from_asns(&[Asn(first_as)]),
                ..Default::default()
            }),
            peer: PeerId(1),
            path_id,
            source: RouteSource::Ebgp,
            igp_cost: 0,
            learned_at: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn adj_rib_insert_replace_remove() {
        let mut rib = AdjRib::new();
        let p = Prefix::v4(10, 0, 0, 0, 8);
        assert!(rib.insert(route(p, 0, 1)).is_none());
        assert_eq!(rib.len(), 1);
        // Replacement keeps entry count.
        let old = rib.insert(route(p, 0, 2)).unwrap();
        assert_eq!(old.attrs.as_path.first_as(), Some(Asn(1)));
        assert_eq!(rib.len(), 1);
        assert_eq!(
            rib.get(&p, 0).unwrap().attrs.as_path.first_as(),
            Some(Asn(2))
        );
        assert!(rib.remove(&p, 0).is_some());
        assert!(rib.is_empty());
        assert!(rib.remove(&p, 0).is_none());
    }

    #[test]
    fn adj_rib_multiple_paths_per_prefix() {
        let mut rib = AdjRib::new();
        let p = Prefix::v4(10, 0, 0, 0, 8);
        rib.insert(route(p, 1, 100));
        rib.insert(route(p, 2, 200));
        rib.insert(route(p, 3, 300));
        assert_eq!(rib.len(), 3);
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.paths(&p).count(), 3);
        // Paths iterate in path-id order (BTreeMap).
        let ids: Vec<u32> = rib.paths(&p).map(|r| r.path_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let removed = rib.remove_prefix(&p);
        assert_eq!(removed.len(), 3);
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_clear_reports_prefixes() {
        let mut rib = AdjRib::new();
        rib.insert(route(Prefix::v4(10, 0, 0, 0, 8), 0, 1));
        rib.insert(route(Prefix::v4(20, 0, 0, 0, 8), 0, 1));
        let mut cleared = rib.clear();
        cleared.sort();
        assert_eq!(cleared.len(), 2);
        assert!(rib.is_empty());
        assert_eq!(rib.prefix_count(), 0);
    }

    #[test]
    fn loc_rib_basics() {
        let mut rib = LocRib::new();
        let p = Prefix::v4(10, 0, 0, 0, 8);
        assert!(rib.set_best(route(p, 0, 1)).is_none());
        assert!(rib.set_best(route(p, 0, 2)).is_some());
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.get(&p).unwrap().attrs.as_path.first_as(), Some(Asn(2)));
        assert!(rib.remove(&p).is_some());
        assert!(rib.is_empty());
    }

    #[test]
    fn interner_shares_equal_attrs() {
        let mut int = AttrInterner::new();
        let a1 = PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1), Asn(2)]),
            ..Default::default()
        };
        let a2 = a1.clone();
        let arc1 = int.intern(a1);
        let arc2 = int.intern(a2);
        assert!(Arc::ptr_eq(&arc1, &arc2));
        assert_eq!(int.len(), 1);
        assert_eq!(int.hits, 1);
        assert_eq!(int.misses, 1);
    }

    #[test]
    fn interner_distinguishes_different_attrs() {
        let mut int = AttrInterner::new();
        let arc1 = int.intern(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            ..Default::default()
        });
        let arc2 = int.intern(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(2)]),
            ..Default::default()
        });
        assert!(!Arc::ptr_eq(&arc1, &arc2));
        assert_eq!(int.len(), 2);
    }

    #[test]
    fn interner_disabled_always_allocates() {
        let mut int = AttrInterner::disabled();
        let a = PathAttributes::default();
        let arc1 = int.intern(a.clone());
        let arc2 = int.intern(a);
        assert!(!Arc::ptr_eq(&arc1, &arc2));
        assert!(int.is_empty());
        assert!(!int.is_enabled());
    }

    #[test]
    fn interner_gc_frees_unreferenced() {
        let mut int = AttrInterner::new();
        {
            let _arc = int.intern(PathAttributes::default());
            // _arc dropped here
        }
        let kept = int.intern(PathAttributes {
            med: Some(5),
            ..Default::default()
        });
        assert_eq!(int.len(), 2);
        let freed = int.gc();
        assert_eq!(freed, 1);
        assert_eq!(int.len(), 1);
        drop(kept);
    }

    #[test]
    fn intern_arc_reuses_canonical() {
        let mut int = AttrInterner::new();
        let first = int.intern(PathAttributes::default());
        let other = Arc::new(PathAttributes::default());
        let got = int.intern_arc(other);
        assert!(Arc::ptr_eq(&first, &got));
        assert_eq!(int.len(), 1);
    }

    #[test]
    fn rib_invariants_hold_across_mutations() {
        let mut rib = AdjRib::new();
        let p = Prefix::v4(10, 0, 0, 0, 8);
        rib.check_invariants().unwrap();
        rib.insert(route(p, 1, 100));
        rib.insert(route(p, 2, 200));
        rib.check_invariants().unwrap();
        rib.remove(&p, 1);
        rib.check_invariants().unwrap();
        rib.remove_prefix(&p);
        rib.check_invariants().unwrap();
        let mut loc = LocRib::new();
        loc.set_best(route(p, 0, 1));
        loc.check_invariants().unwrap();
    }

    #[test]
    fn peer_id_display() {
        assert_eq!(PeerId(3).to_string(), "peer3");
        assert_eq!(PeerId::LOCAL.to_string(), "local");
    }
}
