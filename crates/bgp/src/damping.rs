//! Route-flap damping (RFC 2439).
//!
//! PEERING applies flap damping to client announcements so that an
//! experiment restarting in a loop cannot churn the global routing system:
//! each flap adds a penalty that decays exponentially; above the suppress
//! threshold the route is withheld until the penalty decays below the
//! reuse threshold.

use peering_netsim::{Prefix, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Damping parameters (defaults follow common vendor settings).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DampingConfig {
    /// Penalty half-life.
    pub half_life: SimDuration,
    /// Penalty added per withdrawal (a "flap").
    pub withdrawal_penalty: f64,
    /// Penalty added per re-announcement / attribute change.
    pub update_penalty: f64,
    /// Suppress the route when penalty exceeds this.
    pub suppress_threshold: f64,
    /// Release the route when penalty decays below this.
    pub reuse_threshold: f64,
    /// Penalty ceiling.
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            half_life: SimDuration::from_secs(15 * 60),
            withdrawal_penalty: 1000.0,
            update_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            max_penalty: 16000.0,
        }
    }
}

/// Per-prefix damping bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PenaltyEntry {
    penalty: f64,
    updated_at: SimTime,
    suppressed: bool,
}

/// Damping state for one peer (typically one PEERING client).
#[derive(Debug, Clone, Default)]
pub struct DampingState {
    entries: BTreeMap<Prefix, PenaltyEntry>,
    /// Count of flap events observed.
    pub flaps: u64,
    /// Count of suppression transitions.
    pub suppressions: u64,
}

impl DampingState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    fn decayed(entry: &PenaltyEntry, now: SimTime, cfg: &DampingConfig) -> f64 {
        let dt = now.since(entry.updated_at).as_secs_f64();
        let hl = cfg.half_life.as_secs_f64().max(1e-9);
        entry.penalty * 0.5_f64.powf(dt / hl)
    }

    fn bump(&mut self, prefix: Prefix, amount: f64, now: SimTime, cfg: &DampingConfig) -> bool {
        self.flaps += 1;
        let entry = self.entries.entry(prefix).or_insert(PenaltyEntry {
            penalty: 0.0,
            updated_at: now,
            suppressed: false,
        });
        let decayed = Self::decayed(entry, now, cfg);
        entry.penalty = (decayed + amount).min(cfg.max_penalty);
        entry.updated_at = now;
        if !entry.suppressed && entry.penalty > cfg.suppress_threshold {
            entry.suppressed = true;
            self.suppressions += 1;
        }
        entry.suppressed
    }

    /// Record a withdrawal. Returns `true` if the prefix is now suppressed.
    pub fn on_withdraw(&mut self, prefix: Prefix, now: SimTime, cfg: &DampingConfig) -> bool {
        self.bump(prefix, cfg.withdrawal_penalty, now, cfg)
    }

    /// Record a (re-)announcement. Returns `true` if suppressed.
    pub fn on_announce(&mut self, prefix: Prefix, now: SimTime, cfg: &DampingConfig) -> bool {
        self.bump(prefix, cfg.update_penalty, now, cfg)
    }

    /// Query (and update) the suppression state of a prefix.
    pub fn is_suppressed(&mut self, prefix: &Prefix, now: SimTime, cfg: &DampingConfig) -> bool {
        let Some(entry) = self.entries.get_mut(prefix) else {
            return false;
        };
        let decayed = Self::decayed(entry, now, cfg);
        entry.penalty = decayed;
        entry.updated_at = now;
        if entry.suppressed && decayed < cfg.reuse_threshold {
            entry.suppressed = false;
        }
        if decayed < 1.0 && !entry.suppressed {
            self.entries.remove(prefix);
            return false;
        }
        entry.suppressed
    }

    /// Current penalty for a prefix (decayed to `now`), 0 if untracked.
    pub fn penalty(&self, prefix: &Prefix, now: SimTime, cfg: &DampingConfig) -> f64 {
        self.entries
            .get(prefix)
            .map(|e| Self::decayed(e, now, cfg))
            .unwrap_or(0.0)
    }

    /// When a currently suppressed prefix will become reusable.
    pub fn reuse_at(&self, prefix: &Prefix, cfg: &DampingConfig) -> Option<SimTime> {
        let entry = self.entries.get(prefix)?;
        if !entry.suppressed {
            return None;
        }
        // penalty * 0.5^(dt/hl) = reuse  =>  dt = hl * log2(penalty/reuse)
        let ratio = entry.penalty / cfg.reuse_threshold;
        if ratio <= 1.0 {
            return Some(entry.updated_at);
        }
        let dt = cfg.half_life.as_secs_f64() * ratio.log2();
        Some(entry.updated_at + SimDuration::from_secs_f64(dt))
    }

    /// Number of tracked prefixes.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Prefix {
        Prefix::v4(184, 164, 224, 0, 24)
    }

    #[test]
    fn single_flap_does_not_suppress() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        assert!(!d.on_withdraw(p(), SimTime::ZERO, &cfg));
        assert!(!d.is_suppressed(&p(), SimTime::ZERO, &cfg));
        assert_eq!(d.flaps, 1);
    }

    #[test]
    fn rapid_flaps_suppress() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        let mut now = SimTime::ZERO;
        let mut suppressed = false;
        for _ in 0..3 {
            now += SimDuration::from_secs(10);
            d.on_announce(p(), now, &cfg);
            now += SimDuration::from_secs(10);
            suppressed = d.on_withdraw(p(), now, &cfg);
        }
        assert!(suppressed, "penalty should exceed 2000 after 3 cycles");
        assert!(d.is_suppressed(&p(), now, &cfg));
        assert_eq!(d.suppressions, 1);
    }

    #[test]
    fn penalty_decays_exponentially() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        d.on_withdraw(p(), SimTime::ZERO, &cfg);
        let at_zero = d.penalty(&p(), SimTime::ZERO, &cfg);
        assert!((at_zero - 1000.0).abs() < 1e-6);
        let one_hl = SimTime::ZERO + cfg.half_life;
        let decayed = d.penalty(&p(), one_hl, &cfg);
        assert!((decayed - 500.0).abs() < 1.0, "decayed={decayed}");
        let two_hl = one_hl + cfg.half_life;
        let decayed2 = d.penalty(&p(), two_hl, &cfg);
        assert!((decayed2 - 250.0).abs() < 1.0, "decayed2={decayed2}");
    }

    #[test]
    fn suppression_releases_after_decay() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            now += SimDuration::from_secs(5);
            d.on_withdraw(p(), now, &cfg);
        }
        assert!(d.is_suppressed(&p(), now, &cfg));
        let reuse = d.reuse_at(&p(), &cfg).expect("suppressed => reuse time");
        assert!(reuse > now);
        // Just before reuse: still suppressed.
        assert!(d.is_suppressed(&p(), reuse - SimDuration::from_secs(60), &cfg));
        // After reuse time: released.
        assert!(!d.is_suppressed(&p(), reuse + SimDuration::from_secs(60), &cfg));
        assert_eq!(d.reuse_at(&p(), &cfg), None);
    }

    #[test]
    fn penalty_is_capped() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        for i in 0..100 {
            d.on_withdraw(p(), SimTime::from_secs(i), &cfg);
        }
        assert!(d.penalty(&p(), SimTime::from_secs(100), &cfg) <= cfg.max_penalty);
    }

    #[test]
    fn fully_decayed_entries_are_dropped() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        d.on_withdraw(p(), SimTime::ZERO, &cfg);
        assert_eq!(d.tracked(), 1);
        // 20 half-lives later the penalty is ~0.001; entry evicted on query.
        let later = SimTime::ZERO + cfg.half_life * 20;
        assert!(!d.is_suppressed(&p(), later, &cfg));
        assert_eq!(d.tracked(), 0);
    }

    #[test]
    fn untracked_prefix_is_not_suppressed() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        assert!(!d.is_suppressed(&p(), SimTime::ZERO, &cfg));
        assert_eq!(d.penalty(&p(), SimTime::ZERO, &cfg), 0.0);
        assert_eq!(d.reuse_at(&p(), &cfg), None);
    }

    #[test]
    fn independent_prefixes() {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        let q = Prefix::v4(184, 164, 225, 0, 24);
        for i in 0..4 {
            d.on_withdraw(p(), SimTime::from_secs(i * 5), &cfg);
        }
        assert!(d.is_suppressed(&p(), SimTime::from_secs(20), &cfg));
        assert!(!d.is_suppressed(&q, SimTime::from_secs(20), &cfg));
    }
}
