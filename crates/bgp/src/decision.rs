//! The BGP decision process (RFC 4271 §9.1.2).
//!
//! PEERING servers deliberately *skip* this process for client-facing
//! sessions — clients see every peer's routes and decide for themselves —
//! but every normal speaker in the simulated Internet, every emulated PoP
//! router, and every client-side router runs it.

use crate::rib::{Route, RouteSource};
use std::cmp::Ordering;

/// Tunables for the decision process.
#[derive(Debug, Clone, Copy)]
pub struct DecisionConfig {
    /// Compare MED even between routes from different neighbor ASes.
    pub always_compare_med: bool,
    /// Apply the eBGP-over-iBGP preference step.
    pub prefer_ebgp: bool,
    /// Apply the IGP-cost step.
    pub use_igp_cost: bool,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            always_compare_med: false,
            prefer_ebgp: true,
            use_igp_cost: true,
        }
    }
}

fn source_rank(s: RouteSource) -> u8 {
    // Locally originated beats everything (Cisco "weight" analog),
    // then eBGP, then iBGP.
    match s {
        RouteSource::Local => 0,
        RouteSource::Ebgp => 1,
        RouteSource::Ibgp => 2,
    }
}

/// Compare two routes for the same prefix.
///
/// Returns `Ordering::Greater` when `a` is preferred over `b`. The order
/// is total and deterministic: ties fall through to peer id and path id,
/// so repeated runs of the simulation always select the same best route.
pub fn compare_routes(a: &Route, b: &Route, cfg: &DecisionConfig) -> Ordering {
    debug_assert_eq!(
        a.prefix, b.prefix,
        "comparing routes for different prefixes"
    );

    // 0. Locally originated wins.
    let rank = source_rank(b.source).cmp(&source_rank(a.source));
    if rank != Ordering::Equal {
        return rank;
    }
    // 1. Highest local preference.
    let lp = a
        .attrs
        .effective_local_pref()
        .cmp(&b.attrs.effective_local_pref());
    if lp != Ordering::Equal {
        return lp;
    }
    // 2. Shortest AS path.
    let len = b
        .attrs
        .as_path
        .hop_count()
        .cmp(&a.attrs.as_path.hop_count());
    if len != Ordering::Equal {
        return len;
    }
    // 3. Lowest origin (IGP < EGP < INCOMPLETE).
    let origin = b.attrs.origin.cmp(&a.attrs.origin);
    if origin != Ordering::Equal {
        return origin;
    }
    // 4. Lowest MED, comparable only between routes via the same
    //    neighbor AS unless always_compare_med.
    let comparable =
        cfg.always_compare_med || a.attrs.as_path.first_as() == b.attrs.as_path.first_as();
    if comparable {
        let med = b.attrs.med.unwrap_or(0).cmp(&a.attrs.med.unwrap_or(0));
        if med != Ordering::Equal {
            return med;
        }
    }
    // 5. Prefer eBGP over iBGP (Local already handled above).
    if cfg.prefer_ebgp {
        let s = source_rank(b.source).cmp(&source_rank(a.source));
        if s != Ordering::Equal {
            return s;
        }
    }
    // 6. Lowest IGP cost to the next hop.
    if cfg.use_igp_cost {
        let igp = b.igp_cost.cmp(&a.igp_cost);
        if igp != Ordering::Equal {
            return igp;
        }
    }
    // 7. Lowest peer id (stands in for lowest router id).
    let peer = b.peer.cmp(&a.peer);
    if peer != Ordering::Equal {
        return peer;
    }
    // 8. Lowest path id.
    b.path_id.cmp(&a.path_id)
}

/// Pick the best route among candidates; `None` if the iterator is empty.
pub fn best_route<'a>(
    candidates: impl Iterator<Item = &'a Route>,
    cfg: &DecisionConfig,
) -> Option<&'a Route> {
    candidates.reduce(|best, r| {
        if compare_routes(r, best, cfg) == Ordering::Greater {
            r
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin, PathAttributes};
    use crate::rib::PeerId;
    use peering_netsim::{Asn, Prefix, SimTime};
    use std::sync::Arc;

    fn base_route() -> Route {
        Route {
            prefix: Prefix::v4(10, 0, 0, 0, 8),
            attrs: Arc::new(PathAttributes {
                as_path: AsPath::from_asns(&[Asn(1), Asn(2)]),
                ..Default::default()
            }),
            peer: PeerId(1),
            path_id: 0,
            source: RouteSource::Ebgp,
            igp_cost: 10,
            learned_at: SimTime::ZERO,
            trace: None,
        }
    }

    fn with_attrs(f: impl FnOnce(&mut PathAttributes)) -> Route {
        let mut r = base_route();
        let mut attrs = (*r.attrs).clone();
        f(&mut attrs);
        r.attrs = Arc::new(attrs);
        r
    }

    #[test]
    fn local_pref_dominates() {
        let low = with_attrs(|a| {
            a.local_pref = Some(50);
            a.as_path = AsPath::from_asns(&[Asn(1)]); // shorter path
        });
        let high = with_attrs(|a| a.local_pref = Some(200));
        assert_eq!(
            compare_routes(&high, &low, &DecisionConfig::default()),
            Ordering::Greater
        );
    }

    #[test]
    fn shorter_as_path_wins() {
        let short = with_attrs(|a| a.as_path = AsPath::from_asns(&[Asn(1)]));
        let long = with_attrs(|a| a.as_path = AsPath::from_asns(&[Asn(1), Asn(2), Asn(3)]));
        assert_eq!(
            compare_routes(&short, &long, &DecisionConfig::default()),
            Ordering::Greater
        );
    }

    #[test]
    fn lower_origin_wins() {
        let igp = with_attrs(|a| a.origin = Origin::Igp);
        let inc = with_attrs(|a| a.origin = Origin::Incomplete);
        assert_eq!(
            compare_routes(&igp, &inc, &DecisionConfig::default()),
            Ordering::Greater
        );
    }

    #[test]
    fn med_compared_same_neighbor_only() {
        // Same first AS: MED applies.
        let low_med = with_attrs(|a| a.med = Some(10));
        let high_med = with_attrs(|a| a.med = Some(100));
        assert_eq!(
            compare_routes(&low_med, &high_med, &DecisionConfig::default()),
            Ordering::Greater
        );
        // Different first AS: MED skipped, falls to later tiebreaks.
        let other_as = with_attrs(|a| {
            a.med = Some(100);
            a.as_path = AsPath::from_asns(&[Asn(9), Asn(2)]);
        });
        let mut low2 = with_attrs(|a| a.med = Some(10));
        low2.peer = PeerId(5); // higher peer id loses the final tiebreak
        let cfg = DecisionConfig::default();
        // With MED not comparable, peer id decides: other_as has PeerId(1).
        assert_eq!(compare_routes(&other_as, &low2, &cfg), Ordering::Greater);
        // With always_compare_med the MED decides.
        let cfg = DecisionConfig {
            always_compare_med: true,
            ..Default::default()
        };
        assert_eq!(compare_routes(&low2, &other_as, &cfg), Ordering::Greater);
    }

    #[test]
    fn local_beats_ebgp_beats_ibgp() {
        let mut local = base_route();
        local.source = RouteSource::Local;
        let ebgp = base_route();
        let mut ibgp = base_route();
        ibgp.source = RouteSource::Ibgp;
        let cfg = DecisionConfig::default();
        assert_eq!(compare_routes(&local, &ebgp, &cfg), Ordering::Greater);
        assert_eq!(compare_routes(&ebgp, &ibgp, &cfg), Ordering::Greater);
        assert_eq!(compare_routes(&local, &ibgp, &cfg), Ordering::Greater);
    }

    #[test]
    fn igp_cost_breaks_ties() {
        let mut near = base_route();
        near.igp_cost = 5;
        let mut far = base_route();
        far.igp_cost = 50;
        assert_eq!(
            compare_routes(&near, &far, &DecisionConfig::default()),
            Ordering::Greater
        );
        // Disabled: falls to peer id (equal) then path id (equal) -> Equal.
        let cfg = DecisionConfig {
            use_igp_cost: false,
            ..Default::default()
        };
        assert_eq!(compare_routes(&near, &far, &cfg), Ordering::Equal);
    }

    #[test]
    fn peer_and_path_id_final_tiebreak() {
        let mut a = base_route();
        a.peer = PeerId(1);
        let mut b = base_route();
        b.peer = PeerId(2);
        assert_eq!(
            compare_routes(&a, &b, &DecisionConfig::default()),
            Ordering::Greater
        );
        let mut c = base_route();
        c.path_id = 1;
        let mut d = base_route();
        d.path_id = 2;
        assert_eq!(
            compare_routes(&c, &d, &DecisionConfig::default()),
            Ordering::Greater
        );
    }

    #[test]
    fn best_route_selects_max() {
        let cfg = DecisionConfig::default();
        let routes = [
            with_attrs(|a| a.as_path = AsPath::from_asns(&[Asn(1), Asn(2), Asn(3)])),
            with_attrs(|a| a.as_path = AsPath::from_asns(&[Asn(1)])),
            with_attrs(|a| a.as_path = AsPath::from_asns(&[Asn(1), Asn(2)])),
        ];
        let best = best_route(routes.iter(), &cfg).unwrap();
        assert_eq!(best.attrs.as_path.hop_count(), 1);
        assert!(best_route(std::iter::empty(), &cfg).is_none());
    }

    #[test]
    fn order_is_antisymmetric() {
        let a = with_attrs(|x| x.local_pref = Some(150));
        let b = base_route();
        let cfg = DecisionConfig::default();
        assert_eq!(compare_routes(&a, &b, &cfg), Ordering::Greater);
        assert_eq!(compare_routes(&b, &a, &cfg), Ordering::Less);
        assert_eq!(compare_routes(&a, &a, &cfg), Ordering::Equal);
    }
}
