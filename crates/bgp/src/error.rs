//! BGP error types and their mapping onto NOTIFICATION codes.

use crate::message::NotifCode;
use std::fmt;

/// Everything that can go wrong while decoding or processing BGP data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// Message shorter than its header claims or malformed marker.
    BadHeader(String),
    /// Header length field out of the RFC 4271 `[19, 4096]` bounds.
    BadLength(u16),
    /// Unknown message type octet.
    BadType(u8),
    /// OPEN message malformed or carrying unacceptable values.
    BadOpen(String),
    /// UPDATE message malformed.
    BadUpdate(String),
    /// Attribute-level problem inside an UPDATE.
    BadAttribute(String),
    /// NOTIFICATION malformed.
    BadNotification(String),
    /// The peer's OPEN did not match our session configuration.
    PeerMismatch(String),
    /// Operation invalid in the current FSM state.
    FsmViolation(String),
}

impl BgpError {
    /// The NOTIFICATION (code, subcode) this error maps to when it must be
    /// reported to the peer.
    pub fn notification(&self) -> (NotifCode, u8) {
        match self {
            BgpError::BadHeader(_) => (NotifCode::MessageHeaderError, 1), // conn not synced
            BgpError::BadLength(_) => (NotifCode::MessageHeaderError, 2), // bad length
            BgpError::BadType(_) => (NotifCode::MessageHeaderError, 3),   // bad type
            BgpError::BadOpen(_) => (NotifCode::OpenMessageError, 0),
            BgpError::PeerMismatch(_) => (NotifCode::OpenMessageError, 2), // bad peer AS
            BgpError::BadUpdate(_) => (NotifCode::UpdateMessageError, 0),
            BgpError::BadAttribute(_) => (NotifCode::UpdateMessageError, 1),
            BgpError::BadNotification(_) => (NotifCode::MessageHeaderError, 0),
            BgpError::FsmViolation(_) => (NotifCode::FsmError, 0),
        }
    }
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::BadHeader(s) => write!(f, "bad message header: {s}"),
            BgpError::BadLength(l) => write!(f, "bad message length: {l}"),
            BgpError::BadType(t) => write!(f, "unknown message type: {t}"),
            BgpError::BadOpen(s) => write!(f, "bad OPEN: {s}"),
            BgpError::BadUpdate(s) => write!(f, "bad UPDATE: {s}"),
            BgpError::BadAttribute(s) => write!(f, "bad attribute: {s}"),
            BgpError::BadNotification(s) => write!(f, "bad NOTIFICATION: {s}"),
            BgpError::PeerMismatch(s) => write!(f, "peer mismatch: {s}"),
            BgpError::FsmViolation(s) => write!(f, "FSM violation: {s}"),
        }
    }
}

impl std::error::Error for BgpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notification_mapping() {
        assert_eq!(
            BgpError::BadLength(5).notification(),
            (NotifCode::MessageHeaderError, 2)
        );
        assert_eq!(
            BgpError::BadType(9).notification(),
            (NotifCode::MessageHeaderError, 3)
        );
        assert_eq!(
            BgpError::PeerMismatch("x".into()).notification(),
            (NotifCode::OpenMessageError, 2)
        );
        assert_eq!(
            BgpError::BadAttribute("x".into()).notification(),
            (NotifCode::UpdateMessageError, 1)
        );
    }

    #[test]
    fn display_is_informative() {
        let e = BgpError::BadOpen("hold time 1 < 3".into());
        assert!(e.to_string().contains("hold time"));
    }
}
