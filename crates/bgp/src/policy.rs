//! Route policy: the match/action engine applied on import and export.
//!
//! This is the mechanism behind two of the paper's pillars: *fine-grained
//! announcement control* for clients (prepend, poison, steer by community)
//! and *safety enforcement* at servers ("outbound filters on prefixes and
//! origin AS" that make hijacks and leaks impossible).

use crate::attrs::{Community, Origin, PathAttributes};
use peering_netsim::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A predicate over `(prefix, attributes)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Match {
    /// Always true.
    Any,
    /// Prefix is covered by one of these (e.g. "inside PEERING's /19").
    PrefixIn(Vec<Prefix>),
    /// Prefix is exactly one of these.
    PrefixExact(Vec<Prefix>),
    /// Prefix length is strictly greater than the bound (e.g. >24 is
    /// conventionally not globally routable).
    LongerThan(u8),
    /// AS path contains the ASN anywhere.
    AsPathContains(Asn),
    /// The route's origin AS equals the ASN.
    OriginatedBy(Asn),
    /// AS path is longer than this many hops.
    AsPathLongerThan(u32),
    /// The community is attached.
    HasCommunity(Community),
    /// ORIGIN attribute equals.
    OriginIs(Origin),
    /// Negation.
    Not(Box<Match>),
    /// Conjunction.
    All(Vec<Match>),
    /// Disjunction.
    AnyOf(Vec<Match>),
}

impl Match {
    /// True when the predicate depends only on the prefix, never on the
    /// path attributes. Static analyzers use this to decide whether a
    /// rule's match region can be computed exactly: a prefix-structural
    /// match is a pure region of `(address, length)` space, while a match
    /// involving attributes can fire or not per announcement.
    pub fn is_prefix_structural(&self) -> bool {
        match self {
            Match::Any | Match::PrefixIn(_) | Match::PrefixExact(_) | Match::LongerThan(_) => true,
            Match::AsPathContains(_)
            | Match::OriginatedBy(_)
            | Match::AsPathLongerThan(_)
            | Match::HasCommunity(_)
            | Match::OriginIs(_) => false,
            Match::Not(m) => m.is_prefix_structural(),
            Match::All(ms) | Match::AnyOf(ms) => ms.iter().all(Match::is_prefix_structural),
        }
    }

    /// Evaluate the predicate.
    pub fn matches(&self, prefix: &Prefix, attrs: &PathAttributes) -> bool {
        match self {
            Match::Any => true,
            Match::PrefixIn(list) => list.iter().any(|p| p.covers(prefix)),
            Match::PrefixExact(list) => list.contains(prefix),
            Match::LongerThan(len) => prefix.len() > *len,
            Match::AsPathContains(asn) => attrs.as_path.contains(*asn),
            Match::OriginatedBy(asn) => attrs.as_path.origin_as() == Some(*asn),
            Match::AsPathLongerThan(n) => attrs.as_path.hop_count() > *n,
            Match::HasCommunity(c) => attrs.has_community(*c),
            Match::OriginIs(o) => attrs.origin == *o,
            Match::Not(m) => !m.matches(prefix, attrs),
            Match::All(ms) => ms.iter().all(|m| m.matches(prefix, attrs)),
            Match::AnyOf(ms) => ms.iter().any(|m| m.matches(prefix, attrs)),
        }
    }
}

/// An action taken when a rule matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Accept the route, stopping rule evaluation.
    Accept,
    /// Reject the route, stopping rule evaluation.
    Reject,
    /// Set LOCAL_PREF.
    SetLocalPref(u32),
    /// Set MED.
    SetMed(u32),
    /// Prepend an ASN n times.
    Prepend(Asn, u8),
    /// Attach a community.
    AddCommunity(Community),
    /// Detach a community.
    RemoveCommunity(Community),
    /// Detach every community whose high 16 bits equal the value (route
    /// servers strip their `0:*` control communities on export).
    RemoveCommunitiesWithAsn(u16),
    /// Strip every community.
    ClearCommunities,
    /// Rewrite the next hop.
    SetNextHop(Ipv4Addr),
    /// Strip private ASNs from the path (PEERING does this for emulated
    /// domains behind its public ASN).
    StripPrivateAsns,
}

impl Action {
    /// True for `Accept` and `Reject`, the two actions that stop rule
    /// evaluation.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Action::Accept | Action::Reject)
    }

    /// `Some(true)` for `Accept`, `Some(false)` for `Reject`, `None` for
    /// every modifying action.
    pub fn terminal_verdict(&self) -> Option<bool> {
        match self {
            Action::Accept => Some(true),
            Action::Reject => Some(false),
            _ => None,
        }
    }
}

/// A rule: when `matches` holds, run `actions` in order. An `Accept` or
/// `Reject` action is terminal; a rule without a terminal action falls
/// through to the next rule (with its modifications kept).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// The predicate.
    pub matches: Match,
    /// Actions to run on match.
    pub actions: Vec<Action>,
}

impl PolicyRule {
    /// Build a rule.
    pub fn new(matches: Match, actions: Vec<Action>) -> Self {
        PolicyRule { matches, actions }
    }

    /// The verdict this rule yields when it matches: `Some(true)` if its
    /// first terminal action accepts, `Some(false)` if it rejects, `None`
    /// if the rule falls through.
    pub fn verdict(&self) -> Option<bool> {
        self.actions.iter().find_map(Action::terminal_verdict)
    }

    /// Indices of actions that can never run because an earlier action in
    /// the same rule is terminal.
    pub fn unreachable_actions(&self) -> Vec<usize> {
        match self.actions.iter().position(Action::is_terminal) {
            Some(t) => ((t + 1)..self.actions.len()).collect(),
            None => Vec::new(),
        }
    }
}

/// The verdict when no rule terminates evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefaultVerdict {
    /// Accept unmatched routes.
    Accept,
    /// Reject unmatched routes.
    Reject,
}

/// An ordered rule list with a default verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Rules evaluated first to last.
    pub rules: Vec<PolicyRule>,
    /// Verdict when no terminal action fires.
    pub default: DefaultVerdict,
}

impl Default for Policy {
    fn default() -> Self {
        Policy::accept_all()
    }
}

impl Policy {
    /// Accept everything unchanged.
    pub fn accept_all() -> Self {
        Policy {
            rules: Vec::new(),
            default: DefaultVerdict::Accept,
        }
    }

    /// Reject everything.
    pub fn reject_all() -> Self {
        Policy {
            rules: Vec::new(),
            default: DefaultVerdict::Reject,
        }
    }

    /// Builder: append a rule.
    pub fn rule(mut self, matches: Match, actions: Vec<Action>) -> Self {
        self.rules.push(PolicyRule::new(matches, actions));
        self
    }

    /// Builder: set the default verdict.
    pub fn default_verdict(mut self, v: DefaultVerdict) -> Self {
        self.default = v;
        self
    }

    /// Apply the policy. Returns `true` to accept (with `attrs` possibly
    /// modified) or `false` to reject.
    pub fn apply(&self, prefix: &Prefix, attrs: &mut PathAttributes) -> bool {
        for rule in &self.rules {
            if !rule.matches.matches(prefix, attrs) {
                continue;
            }
            for action in &rule.actions {
                match action {
                    Action::Accept => return true,
                    Action::Reject => return false,
                    Action::SetLocalPref(v) => attrs.local_pref = Some(*v),
                    Action::SetMed(v) => attrs.med = Some(*v),
                    Action::Prepend(asn, n) => attrs.as_path.prepend(*asn, *n as usize),
                    Action::AddCommunity(c) => attrs.add_community(*c),
                    Action::RemoveCommunity(c) => attrs.remove_community(*c),
                    Action::RemoveCommunitiesWithAsn(asn) => {
                        attrs.communities.retain(|c| c.asn() != *asn)
                    }
                    Action::ClearCommunities => attrs.communities.clear(),
                    Action::SetNextHop(ip) => attrs.next_hop = *ip,
                    Action::StripPrivateAsns => attrs.as_path.strip_private(),
                }
            }
        }
        self.default == DefaultVerdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;

    fn attrs(path: &[u32]) -> PathAttributes {
        PathAttributes {
            as_path: AsPath::from_asns(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>()),
            ..Default::default()
        }
    }

    #[test]
    fn match_primitives() {
        let p = Prefix::v4(184, 164, 224, 0, 24);
        let a = attrs(&[100, 200]);
        assert!(Match::Any.matches(&p, &a));
        assert!(Match::PrefixIn(vec![Prefix::v4(184, 164, 224, 0, 19)]).matches(&p, &a));
        assert!(!Match::PrefixIn(vec![Prefix::v4(10, 0, 0, 0, 8)]).matches(&p, &a));
        assert!(Match::PrefixExact(vec![p]).matches(&p, &a));
        assert!(!Match::PrefixExact(vec![Prefix::v4(184, 164, 224, 0, 19)]).matches(&p, &a));
        assert!(Match::LongerThan(19).matches(&p, &a));
        assert!(!Match::LongerThan(24).matches(&p, &a));
        assert!(Match::AsPathContains(Asn(200)).matches(&p, &a));
        assert!(Match::OriginatedBy(Asn(200)).matches(&p, &a));
        assert!(!Match::OriginatedBy(Asn(100)).matches(&p, &a));
        assert!(Match::AsPathLongerThan(1).matches(&p, &a));
        assert!(!Match::AsPathLongerThan(2).matches(&p, &a));
        assert!(Match::OriginIs(Origin::Igp).matches(&p, &a));
    }

    #[test]
    fn match_combinators() {
        let p = Prefix::v4(10, 0, 0, 0, 24);
        let a = attrs(&[1]);
        let yes = Match::Any;
        let no = Match::Not(Box::new(Match::Any));
        assert!(!no.matches(&p, &a));
        assert!(Match::All(vec![yes.clone(), yes.clone()]).matches(&p, &a));
        assert!(!Match::All(vec![yes.clone(), no.clone()]).matches(&p, &a));
        assert!(Match::AnyOf(vec![no.clone(), yes.clone()]).matches(&p, &a));
        assert!(!Match::AnyOf(vec![no.clone(), no]).matches(&p, &a));
        assert!(Match::All(vec![]).matches(&p, &a));
        assert!(!Match::AnyOf(vec![]).matches(&p, &a));
    }

    #[test]
    fn first_terminal_action_decides() {
        let policy = Policy::accept_all()
            .rule(Match::AsPathContains(Asn(666)), vec![Action::Reject])
            .rule(Match::Any, vec![Action::SetLocalPref(200), Action::Accept]);
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut bad = attrs(&[666, 1]);
        assert!(!policy.apply(&p, &mut bad));
        let mut good = attrs(&[1]);
        assert!(policy.apply(&p, &mut good));
        assert_eq!(good.local_pref, Some(200));
    }

    #[test]
    fn fallthrough_keeps_modifications() {
        // First rule prepends but does not terminate; default accepts.
        let policy = Policy::accept_all()
            .rule(Match::Any, vec![Action::Prepend(Asn(47065), 2)])
            .rule(
                Match::Any,
                vec![Action::AddCommunity(Community::new(47065, 1))],
            );
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut a = attrs(&[1]);
        assert!(policy.apply(&p, &mut a));
        assert_eq!(a.as_path.hop_count(), 3);
        assert!(a.has_community(Community::new(47065, 1)));
    }

    #[test]
    fn default_verdicts() {
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut a = attrs(&[1]);
        assert!(Policy::accept_all().apply(&p, &mut a));
        assert!(!Policy::reject_all().apply(&p, &mut a));
        // reject_all with an explicit allow rule = allowlist.
        let allow = Policy::reject_all().rule(
            Match::PrefixIn(vec![Prefix::v4(184, 164, 224, 0, 19)]),
            vec![Action::Accept],
        );
        let mut a2 = attrs(&[1]);
        assert!(allow.apply(&Prefix::v4(184, 164, 230, 0, 24), &mut a2));
        assert!(!allow.apply(&p, &mut a2));
    }

    #[test]
    fn action_mutations() {
        let policy = Policy::accept_all().rule(
            Match::Any,
            vec![
                Action::SetMed(50),
                Action::SetNextHop(Ipv4Addr::new(9, 9, 9, 9)),
                Action::AddCommunity(Community::new(1, 1)),
                Action::AddCommunity(Community::new(1, 2)),
                Action::RemoveCommunity(Community::new(1, 1)),
            ],
        );
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut a = attrs(&[1]);
        assert!(policy.apply(&p, &mut a));
        assert_eq!(a.med, Some(50));
        assert_eq!(a.next_hop, Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(a.communities, vec![Community::new(1, 2)]);
        // ClearCommunities wipes everything.
        let wipe = Policy::accept_all().rule(Match::Any, vec![Action::ClearCommunities]);
        assert!(wipe.apply(&p, &mut a));
        assert!(a.communities.is_empty());
    }

    #[test]
    fn strip_private_asns_action() {
        let policy = Policy::accept_all().rule(Match::Any, vec![Action::StripPrivateAsns]);
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut a = attrs(&[47065, 65001, 3356]);
        assert!(policy.apply(&p, &mut a));
        assert_eq!(a.as_path.to_string(), "47065 3356");
    }

    #[test]
    fn introspection_terminal_and_structural() {
        assert!(Action::Accept.is_terminal());
        assert!(Action::Reject.is_terminal());
        assert!(!Action::SetMed(1).is_terminal());
        assert_eq!(Action::Accept.terminal_verdict(), Some(true));
        assert_eq!(Action::Reject.terminal_verdict(), Some(false));
        assert_eq!(Action::StripPrivateAsns.terminal_verdict(), None);

        let rule = PolicyRule::new(
            Match::Any,
            vec![
                Action::SetMed(1),
                Action::Reject,
                Action::Accept,
                Action::SetMed(2),
            ],
        );
        assert_eq!(rule.verdict(), Some(false));
        assert_eq!(rule.unreachable_actions(), vec![2, 3]);
        let fallthrough = PolicyRule::new(Match::Any, vec![Action::SetMed(1)]);
        assert_eq!(fallthrough.verdict(), None);
        assert!(fallthrough.unreachable_actions().is_empty());

        assert!(Match::Any.is_prefix_structural());
        assert!(Match::PrefixIn(vec![Prefix::v4(10, 0, 0, 0, 8)]).is_prefix_structural());
        assert!(Match::LongerThan(24).is_prefix_structural());
        assert!(!Match::AsPathContains(Asn(1)).is_prefix_structural());
        assert!(Match::Not(Box::new(Match::LongerThan(24))).is_prefix_structural());
        assert!(Match::All(vec![Match::Any, Match::LongerThan(8)]).is_prefix_structural());
        assert!(
            !Match::AnyOf(vec![Match::Any, Match::OriginIs(Origin::Igp)]).is_prefix_structural()
        );
    }

    #[test]
    fn community_steering_no_export() {
        // The classic "don't send to this peer" community gate.
        let policy = Policy::accept_all().rule(
            Match::HasCommunity(Community::NO_EXPORT),
            vec![Action::Reject],
        );
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let mut tagged = attrs(&[1]);
        tagged.add_community(Community::NO_EXPORT);
        assert!(!policy.apply(&p, &mut tagged));
        let mut plain = attrs(&[1]);
        assert!(policy.apply(&p, &mut plain));
    }
}
