//! Deep memory accounting for BGP table structures.
//!
//! Figure 2 of the paper plots "BGP table memory usage as # of prefixes
//! and peers increases" for a Quagga router inside a MinineXt container.
//! To regenerate that figure honestly we measure *our own* structures:
//! every type that participates in a RIB reports its deep size — struct
//! plus owned heap, with container overheads modeled explicitly.

use crate::attrs::{AsPathSegment, PathAttributes};
use crate::rib::{AdjRib, AttrInterner, LocRib, Route};
use std::collections::HashSet;
use std::mem::size_of;
use std::sync::Arc;

/// Approximate per-entry bookkeeping overhead of a `HashMap`
/// (control bytes, capacity slack, bucket metadata).
pub const HASH_ENTRY_OVERHEAD: usize = 48;
/// Approximate per-entry overhead of a `BTreeMap` (node amortization).
pub const BTREE_ENTRY_OVERHEAD: usize = 16;
/// Allocator header cost charged per heap allocation.
pub const ALLOC_HEADER: usize = 16;

/// Types that can report the bytes they own, including heap.
pub trait DeepSize {
    /// Total owned bytes: the value itself plus everything it points to.
    fn deep_size(&self) -> usize;
}

impl DeepSize for PathAttributes {
    fn deep_size(&self) -> usize {
        let mut sz = size_of::<PathAttributes>();
        for seg in &self.as_path.segments {
            sz += size_of::<AsPathSegment>() + ALLOC_HEADER;
            match seg {
                AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => {
                    sz += v.capacity() * size_of::<peering_netsim::Asn>();
                }
            }
        }
        if self.as_path.segments.capacity() > 0 {
            sz += ALLOC_HEADER;
        }
        if self.communities.capacity() > 0 {
            sz += ALLOC_HEADER + self.communities.capacity() * size_of::<crate::attrs::Community>();
        }
        sz
    }
}

impl DeepSize for Route {
    /// The route entry itself. The attribute allocation is *not* charged
    /// here (it is shared); use [`rib_memory`] to account for a whole
    /// table with sharing handled correctly.
    fn deep_size(&self) -> usize {
        size_of::<Route>()
    }
}

impl DeepSize for AdjRib {
    fn deep_size(&self) -> usize {
        let mut sz = size_of::<AdjRib>();
        // prefix -> BTreeMap entries in the outer BTreeMap
        sz += self.prefix_count() * (size_of::<peering_netsim::Prefix>() + BTREE_ENTRY_OVERHEAD);
        // (path_id, Route) entries in the inner BTreeMaps
        sz += self.len() * (size_of::<u32>() + size_of::<Route>() + BTREE_ENTRY_OVERHEAD);
        sz
    }
}

impl DeepSize for LocRib {
    /// The Loc-RIB is trie-backed: charge every heap node (which embeds
    /// its `Option<Route>` slot inline) plus an allocator header each.
    fn deep_size(&self) -> usize {
        size_of::<LocRib>() + self.node_bytes() + self.node_count() * ALLOC_HEADER
    }
}

impl DeepSize for AttrInterner {
    fn deep_size(&self) -> usize {
        let mut sz = size_of::<AttrInterner>();
        for arc in self.iter() {
            sz += HASH_ENTRY_OVERHEAD; // bucket slot
            sz += ALLOC_HEADER + arc.deep_size(); // the shared allocation
        }
        sz
    }
}

/// Account for a set of RIBs that share attributes.
///
/// Shared `Arc<PathAttributes>` allocations are charged exactly once no
/// matter how many routes reference them — which is the point of the
/// interning design and the reason the Figure 2 curve stays sub-linear in
/// peers for identical route sets.
pub fn rib_memory<'a>(ribs: impl Iterator<Item = &'a AdjRib>, loc_rib: Option<&LocRib>) -> usize {
    let mut seen: HashSet<*const PathAttributes> = HashSet::new();
    let mut total = 0usize;
    let charge_route = |route: &Route, seen: &mut HashSet<*const PathAttributes>| {
        let ptr = Arc::as_ptr(&route.attrs);
        if seen.insert(ptr) {
            ALLOC_HEADER + route.attrs.deep_size()
        } else {
            0
        }
    };
    for rib in ribs {
        total += rib.deep_size();
        for route in rib.iter() {
            total += charge_route(route, &mut seen);
        }
    }
    if let Some(lr) = loc_rib {
        total += lr.deep_size();
        for route in lr.iter() {
            total += charge_route(route, &mut seen);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::rib::{PeerId, RouteSource};
    use peering_netsim::{Asn, Prefix, SimTime};

    fn attrs(n_hops: u32) -> PathAttributes {
        let asns: Vec<Asn> = (1..=n_hops).map(Asn).collect();
        PathAttributes {
            as_path: AsPath::from_asns(&asns),
            ..Default::default()
        }
    }

    fn route(prefix: Prefix, attrs: Arc<PathAttributes>) -> Route {
        Route {
            prefix,
            attrs,
            peer: PeerId(1),
            path_id: 0,
            source: RouteSource::Ebgp,
            igp_cost: 0,
            learned_at: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn attrs_size_grows_with_path_and_communities() {
        let small = attrs(1).deep_size();
        let big = attrs(20).deep_size();
        assert!(big > small);
        let mut with_comm = attrs(1);
        for i in 0..10 {
            with_comm.add_community(crate::attrs::Community::new(1, i));
        }
        assert!(with_comm.deep_size() > small);
    }

    #[test]
    fn empty_attrs_is_just_the_struct() {
        let a = PathAttributes::default();
        assert_eq!(a.deep_size(), size_of::<PathAttributes>());
    }

    #[test]
    fn adj_rib_memory_linear_in_routes() {
        let shared = Arc::new(attrs(3));
        let mut rib_small = AdjRib::new();
        let mut rib_big = AdjRib::new();
        for i in 0..10u32 {
            rib_small.insert(route(
                Prefix::v4(10, (i >> 8) as u8, i as u8, 0, 24),
                Arc::clone(&shared),
            ));
        }
        for i in 0..1000u32 {
            rib_big.insert(route(
                Prefix::v4(10, (i >> 8) as u8, i as u8, 0, 24),
                Arc::clone(&shared),
            ));
        }
        let small = rib_small.deep_size();
        let big = rib_big.deep_size();
        assert!(big > small * 50, "big={big} small={small}");
    }

    #[test]
    fn shared_attrs_charged_once() {
        let shared = Arc::new(attrs(5));
        let mut a = AdjRib::new();
        let mut b = AdjRib::new();
        for i in 0..100u32 {
            let p = Prefix::v4(10, 0, i as u8, 0, 24);
            a.insert(route(p, Arc::clone(&shared)));
            b.insert(route(p, Arc::clone(&shared)));
        }
        let together = rib_memory([&a, &b].into_iter(), None);
        // With sharing, the attribute blob appears once; tables dominate.
        let unshared_estimate = a.deep_size() + b.deep_size() + 200 * shared.deep_size();
        assert!(together < unshared_estimate);
        assert!(together >= a.deep_size() + b.deep_size() + shared.deep_size());
    }

    #[test]
    fn unshared_attrs_charged_each() {
        let mut a = AdjRib::new();
        for i in 0..50u32 {
            let p = Prefix::v4(10, 0, i as u8, 0, 24);
            a.insert(route(p, Arc::new(attrs(5)))); // distinct allocations
        }
        let total = rib_memory(std::iter::once(&a), None);
        let one_attr = attrs(5).deep_size();
        assert!(total > a.deep_size() + 50 * one_attr);
    }

    #[test]
    fn loc_rib_counted() {
        let shared = Arc::new(attrs(2));
        let mut lr = LocRib::new();
        for i in 0..10u32 {
            lr.set_best(route(
                Prefix::v4(10, 0, i as u8, 0, 24),
                Arc::clone(&shared),
            ));
        }
        let with = rib_memory(std::iter::empty(), Some(&lr));
        assert!(with > lr.deep_size());
        let without = rib_memory(std::iter::empty(), None);
        assert_eq!(without, 0);
    }

    #[test]
    fn interner_memory_counts_entries() {
        let mut int = AttrInterner::new();
        let a1 = int.intern(attrs(3));
        let empty_sz = AttrInterner::new().deep_size();
        assert!(int.deep_size() > empty_sz);
        drop(a1);
    }
}
