//! The BGP session finite-state machine (RFC 4271 §8).
//!
//! The simulated transport replaces TCP: connection setup is instantaneous
//! when a link exists, so `Connect`/`Active` collapse into a single
//! `Connect` state used by the passive side while it waits for the remote
//! OPEN. All the protocol-visible behavior is kept: OPEN negotiation
//! (including hold-time, 4-octet ASN, and ADD-PATH capabilities),
//! keepalive scheduling at one third of the negotiated hold time, hold
//! timer expiry producing a NOTIFICATION, and session teardown semantics.

use crate::error::BgpError;
use crate::message::{BgpMessage, NotifCode, NotificationMessage, OpenMessage, UpdateMessage};
use peering_netsim::{Asn, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// FSM states. `Active` is merged into [`FsmState::Connect`] because the
/// simulated transport cannot half-fail the way TCP can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsmState {
    /// Session administratively down.
    Idle,
    /// Waiting for the peer (passive) or for the retry timer (active).
    Connect,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for the first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

/// ConnectRetry policy: deterministic exponential backoff with seeded
/// jitter (RFC 4271 §8.2.2's ConnectRetryTimer, adapted to simulation).
///
/// Attempt `n` waits `initial * 2^n`, capped at `max`, with up to a
/// `jitter` fraction shaved off by a [`SimRng`] substream — so retries
/// across a fleet of sessions decorrelate, yet every run of the same seed
/// retries at exactly the same virtual instants.
#[derive(Debug, Clone)]
pub struct ConnectRetryConfig {
    /// Backoff before the first retry.
    pub initial: SimDuration,
    /// Upper bound on the backoff.
    pub max: SimDuration,
    /// Fraction of the backoff the jitter may remove (0.0 to 1.0).
    pub jitter: f64,
    /// Seed for the jitter substream.
    pub seed: u64,
}

impl ConnectRetryConfig {
    /// Conventional policy: 5 s initial, 120 s cap, 25% jitter.
    pub fn new(seed: u64) -> Self {
        ConnectRetryConfig {
            initial: SimDuration::from_secs(5),
            max: SimDuration::from_secs(120),
            jitter: 0.25,
            seed,
        }
    }
}

/// Static configuration of one session endpoint.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Our ASN.
    pub local_asn: Asn,
    /// Our router ID.
    pub router_id: Ipv4Addr,
    /// Expected remote ASN; `None` accepts any (used by route servers).
    pub peer_asn: Option<Asn>,
    /// Proposed hold time (0 disables keepalives).
    pub hold_time: SimDuration,
    /// Whether we wait for the remote to speak first.
    pub passive: bool,
    /// Offer ADD-PATH send.
    pub add_path_send: bool,
    /// Offer ADD-PATH receive.
    pub add_path_receive: bool,
    /// Automatic reconnection after a non-administrative down. `None`
    /// (the default) keeps the classic behavior: the session falls back
    /// to `Idle` and stays there until restarted by hand.
    pub connect_retry: Option<ConnectRetryConfig>,
    /// Advertise the RFC 4724 graceful-restart capability with this
    /// restart time (seconds) in our OPEN.
    pub graceful_restart_secs: Option<u16>,
}

impl SessionConfig {
    /// A conventional active session: 90 s hold time.
    pub fn new(local_asn: Asn, router_id: Ipv4Addr) -> Self {
        SessionConfig {
            local_asn,
            router_id,
            peer_asn: None,
            hold_time: SimDuration::from_secs(90),
            passive: false,
            add_path_send: false,
            add_path_receive: false,
            connect_retry: None,
            graceful_restart_secs: None,
        }
    }

    /// Expect a specific remote ASN.
    pub fn expect_peer(mut self, asn: Asn) -> Self {
        self.peer_asn = Some(asn);
        self
    }

    /// Make this endpoint passive.
    pub fn passive(mut self) -> Self {
        self.passive = true;
        self
    }

    /// Offer ADD-PATH in the given directions.
    pub fn add_path(mut self, send: bool, receive: bool) -> Self {
        self.add_path_send = send;
        self.add_path_receive = receive;
        self
    }

    /// Reconnect automatically after non-administrative session loss.
    pub fn with_connect_retry(mut self, retry: ConnectRetryConfig) -> Self {
        self.connect_retry = Some(retry);
        self
    }

    /// Advertise graceful restart with the given restart time.
    pub fn graceful_restart(mut self, secs: u16) -> Self {
        self.graceful_restart_secs = Some(secs);
        self
    }
}

/// What the session negotiated once established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negotiated {
    /// Remote ASN.
    pub peer_asn: Asn,
    /// Remote router ID.
    pub peer_router_id: Ipv4Addr,
    /// Effective hold time (min of both proposals).
    pub hold_time: SimDuration,
    /// We may send multiple paths per prefix.
    pub add_path_tx: bool,
    /// We may receive multiple paths per prefix.
    pub add_path_rx: bool,
    /// The peer advertised graceful restart with this restart time.
    pub peer_restart_time: Option<SimDuration>,
}

/// Events surfaced to the owner of the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The session reached Established.
    Established(Negotiated),
    /// The session went down.
    Down {
        /// Human-readable reason.
        reason: String,
    },
    /// An UPDATE arrived while established.
    Update(UpdateMessage),
    /// The peer asked us to re-advertise our Adj-RIB-Out.
    RefreshRequested,
}

/// Per-session statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Messages received, by any type.
    pub msgs_in: u64,
    /// Messages emitted.
    pub msgs_out: u64,
    /// UPDATEs received.
    pub updates_in: u64,
    /// UPDATEs sent (counted by the owner when it emits them).
    pub updates_out: u64,
    /// Times the session reached Established.
    pub flaps: u64,
}

/// One endpoint of a BGP session.
#[derive(Debug, Clone)]
pub struct Session {
    cfg: SessionConfig,
    state: FsmState,
    negotiated: Option<Negotiated>,
    hold_deadline: SimTime,
    keepalive_due: SimTime,
    retry_deadline: SimTime,
    retry_attempt: u32,
    retry_rng: Option<SimRng>,
    /// While set, the session dwells in `Idle` until this instant before
    /// automatically re-entering the handshake — the deterministic
    /// idle-hold penalty served after a max-prefix Cease (RFC 4486 §4).
    idle_hold_until: SimTime,
    /// Counters.
    pub stats: SessionStats,
}

impl Session {
    /// Create a session in `Idle`.
    pub fn new(cfg: SessionConfig) -> Self {
        let retry_rng = cfg
            .connect_retry
            .as_ref()
            .map(|rc| SimRng::new(rc.seed).fork("connect-retry"));
        Session {
            cfg,
            state: FsmState::Idle,
            negotiated: None,
            hold_deadline: SimTime::MAX,
            keepalive_due: SimTime::MAX,
            retry_deadline: SimTime::MAX,
            retry_attempt: 0,
            retry_rng,
            idle_hold_until: SimTime::MAX,
            stats: SessionStats::default(),
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// Negotiated parameters once established.
    pub fn negotiated(&self) -> Option<&Negotiated> {
        self.negotiated.as_ref()
    }

    /// True in `Established`.
    pub fn is_established(&self) -> bool {
        self.state == FsmState::Established
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// FSM consistency invariants, checked behind `debug_assert!` by the
    /// speaker after every message and timer event:
    ///
    /// * negotiated parameters exist exactly from `OpenConfirm` onward;
    /// * timers are armed only while a negotiation is live;
    /// * a zero hold time never arms the hold timer;
    /// * the ConnectRetry timer is armed only while reconnecting
    ///   (`Connect`/`OpenSent`) and only on active, retry-enabled
    ///   endpoints;
    /// * an idle-hold penalty is served only while `Idle`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let negotiated = self.negotiated.is_some();
        if self.idle_hold_until != SimTime::MAX && self.state != FsmState::Idle {
            return Err(format!("idle-hold penalty armed in {:?}", self.state));
        }
        if self.retry_deadline != SimTime::MAX {
            if self.cfg.connect_retry.is_none() || self.cfg.passive {
                return Err("retry timer armed without an active retry policy".into());
            }
            if !matches!(self.state, FsmState::Connect | FsmState::OpenSent) {
                return Err(format!("retry timer armed in {:?}", self.state));
            }
        }
        match self.state {
            FsmState::Idle | FsmState::Connect | FsmState::OpenSent => {
                if negotiated {
                    return Err(format!("negotiated parameters present in {:?}", self.state));
                }
                if self.state == FsmState::Idle
                    && (self.hold_deadline != SimTime::MAX || self.keepalive_due != SimTime::MAX)
                {
                    return Err("timers armed while Idle".into());
                }
            }
            FsmState::OpenConfirm | FsmState::Established => {
                let Some(n) = &self.negotiated else {
                    return Err(format!("no negotiated parameters in {:?}", self.state));
                };
                if n.hold_time == SimDuration::ZERO && self.hold_deadline != SimTime::MAX {
                    return Err("hold timer armed despite zero hold time".into());
                }
                if let Some(expected) = self.cfg.peer_asn {
                    if n.peer_asn != expected {
                        return Err(format!(
                            "negotiated peer {} but config expects {expected}",
                            n.peer_asn
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn open_message(&self) -> BgpMessage {
        let hold_secs = (self.cfg.hold_time.as_micros() / 1_000_000).min(u16::MAX as u64) as u16;
        let mut open = OpenMessage::new(self.cfg.local_asn, hold_secs, self.cfg.router_id);
        if self.cfg.add_path_send || self.cfg.add_path_receive {
            open = open.with_add_path(self.cfg.add_path_send, self.cfg.add_path_receive);
        }
        if let Some(secs) = self.cfg.graceful_restart_secs {
            open = open.with_graceful_restart(secs);
        }
        BgpMessage::Open(open)
    }

    /// The next backoff: `initial * 2^attempt` capped at `max`, minus a
    /// deterministic jitter slice drawn from the session's RNG substream.
    fn retry_backoff(&mut self) -> SimDuration {
        let Some(rc) = &self.cfg.connect_retry else {
            return SimDuration::ZERO;
        };
        let shift = self.retry_attempt.min(16);
        let full = rc.initial.saturating_mul(1u64 << shift).min(rc.max);
        let unit = self.retry_rng.as_mut().map(|r| r.unit()).unwrap_or(0.0);
        let shaved = (full.as_micros() as f64 * rc.jitter.clamp(0.0, 1.0) * unit) as u64;
        SimDuration::from_micros(full.as_micros().saturating_sub(shaved))
    }

    /// Arm the ConnectRetry timer on active, retry-enabled endpoints.
    fn arm_retry(&mut self, now: SimTime) {
        if self.cfg.connect_retry.is_some() && !self.cfg.passive {
            let backoff = self.retry_backoff();
            self.retry_deadline = now + backoff;
            self.retry_attempt = self.retry_attempt.saturating_add(1);
        }
    }

    /// Start the session (ManualStart). Active endpoints emit their OPEN
    /// immediately; passive endpoints wait in `Connect`.
    pub fn start(&mut self, now: SimTime) -> Vec<BgpMessage> {
        if self.state != FsmState::Idle {
            return Vec::new();
        }
        // A manual start overrides any idle-hold penalty still pending.
        self.idle_hold_until = SimTime::MAX;
        if self.cfg.passive {
            self.state = FsmState::Connect;
            Vec::new()
        } else {
            self.state = FsmState::OpenSent;
            self.stats.msgs_out += 1;
            // If the OPEN is lost in transit, the retry timer (when
            // configured) re-sends it rather than hanging in OpenSent.
            self.arm_retry(now);
            vec![self.open_message()]
        }
    }

    /// Stop the session (ManualStop): emits a Cease and returns to Idle.
    pub fn stop(&mut self, _now: SimTime) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        if self.state != FsmState::Idle {
            if self.state == FsmState::Established || self.state == FsmState::OpenConfirm {
                out.push(BgpMessage::Notification(NotificationMessage::new(
                    NotifCode::Cease,
                    2, // administrative shutdown
                )));
                self.stats.msgs_out += 1;
            }
            if self.state == FsmState::Established {
                events.push(SessionEvent::Down {
                    reason: "administrative stop".into(),
                });
            }
        }
        self.reset();
        self.retry_attempt = 0;
        (out, events)
    }

    /// The transport under the session failed without a BGP message (TCP
    /// reset, peer process crash, tunnel flap). No NOTIFICATION can be
    /// sent; retry-enabled endpoints schedule a reconnect.
    pub fn drop_connection(&mut self, now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if self.state != FsmState::Idle {
            self.go_down("connection lost", now, &mut events);
        }
        events
    }

    /// The transport delivered bytes that do not parse as a BGP message:
    /// notify the peer the header is bad and drop the session (RFC 4271
    /// §6.1).
    pub fn on_corrupt(&mut self, now: SimTime) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        if self.state != FsmState::Idle {
            out.push(BgpMessage::Notification(NotificationMessage::new(
                NotifCode::MessageHeaderError,
                1, // connection not synchronized
            )));
            self.stats.msgs_out += 1;
            self.go_down("corrupt message", now, &mut events);
        }
        (out, events)
    }

    /// An UPDATE arrived whose attributes are malformed in a way RFC 7606
    /// classifies as *treat-as-withdraw*: the NLRI parsed, so instead of
    /// tearing the session down the announced routes are handled as if
    /// they had been withdrawn, and the session stays Established.
    ///
    /// Outside Established the message is an FSM error exactly as a
    /// well-formed UPDATE would be (RFC 7606 does not soften §8 rules).
    pub fn on_malformed_update(
        &mut self,
        update: UpdateMessage,
        now: SimTime,
    ) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        self.stats.msgs_in += 1;
        match self.state {
            FsmState::Idle => {}
            FsmState::Established => {
                if self.hold_deadline != SimTime::MAX {
                    if let Some(n) = &self.negotiated {
                        self.hold_deadline = now + n.hold_time;
                    }
                }
                self.stats.updates_in += 1;
                let mut withdrawn = update.withdrawn;
                withdrawn.extend(update.announced);
                // An empty treated update would alias End-of-RIB; there is
                // nothing to withdraw, so surface nothing.
                if !withdrawn.is_empty() {
                    events.push(SessionEvent::Update(UpdateMessage {
                        withdrawn,
                        attrs: None,
                        announced: Vec::new(),
                        trace: update.trace,
                    }));
                }
            }
            state => {
                let e = BgpError::FsmViolation(format!("update in {state:?}"));
                let (code, sub) = e.notification();
                out.push(BgpMessage::Notification(NotificationMessage::new(
                    code, sub,
                )));
                self.stats.msgs_out += 1;
                self.go_down(e.to_string(), now, &mut events);
            }
        }
        (out, events)
    }

    /// The peer exceeded its configured maximum prefix count: emit a
    /// Cease NOTIFICATION with subcode 1 ("maximum number of prefixes
    /// reached", RFC 4486) and fall back to Idle, where the session
    /// serves a deterministic idle-hold `penalty` before `tick`
    /// automatically re-enters the handshake.
    pub fn max_prefix_cease(
        &mut self,
        now: SimTime,
        penalty: SimDuration,
    ) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        if self.state == FsmState::Idle {
            return (out, events);
        }
        let was_established = self.state == FsmState::Established;
        out.push(BgpMessage::Notification(NotificationMessage::new(
            NotifCode::Cease,
            1, // maximum number of prefixes reached
        )));
        self.stats.msgs_out += 1;
        self.reset();
        // The penalty is a fixed duration — no jitter — so seeded runs
        // re-establish at exactly the same virtual instant.
        self.idle_hold_until = now + penalty;
        self.retry_attempt = 0;
        if was_established {
            events.push(SessionEvent::Down {
                reason: "max prefixes reached".into(),
            });
        }
        (out, events)
    }

    /// The idle-hold deadline, if a max-prefix penalty is being served.
    pub fn idle_penalty_until(&self) -> Option<SimTime> {
        (self.idle_hold_until != SimTime::MAX).then_some(self.idle_hold_until)
    }

    fn reset(&mut self) {
        self.state = FsmState::Idle;
        self.negotiated = None;
        self.hold_deadline = SimTime::MAX;
        self.keepalive_due = SimTime::MAX;
        self.retry_deadline = SimTime::MAX;
        self.idle_hold_until = SimTime::MAX;
    }

    fn go_down(&mut self, reason: impl Into<String>, now: SimTime, events: &mut Vec<SessionEvent>) {
        let was_established = self.state == FsmState::Established;
        self.reset();
        if self.cfg.connect_retry.is_some() {
            // Automatic restart: fall back to Connect rather than Idle.
            // Passive endpoints resume listening immediately; active ones
            // wait out the backoff before re-sending an OPEN.
            self.state = FsmState::Connect;
            self.arm_retry(now);
        }
        if was_established {
            events.push(SessionEvent::Down {
                reason: reason.into(),
            });
        }
    }

    fn validate_open(&self, open: &OpenMessage) -> Result<(), BgpError> {
        if open.version != 4 {
            return Err(BgpError::BadOpen(format!("version {}", open.version)));
        }
        if let Some(expected) = self.cfg.peer_asn {
            if open.asn() != expected {
                return Err(BgpError::PeerMismatch(format!(
                    "expected {expected}, got {}",
                    open.asn()
                )));
            }
        }
        Ok(())
    }

    fn accept_open(&mut self, open: &OpenMessage, now: SimTime) {
        let peer_hold = SimDuration::from_secs(open.hold_time as u64);
        let hold = peer_hold.min(self.cfg.hold_time);
        let (peer_send, peer_recv) = open.add_path();
        self.negotiated = Some(Negotiated {
            peer_asn: open.asn(),
            peer_router_id: open.router_id,
            hold_time: hold,
            // We can send multiple paths iff we offered send and they
            // offered receive, and vice versa.
            add_path_tx: self.cfg.add_path_send && peer_recv,
            add_path_rx: self.cfg.add_path_receive && peer_send,
            peer_restart_time: open
                .graceful_restart()
                .map(|s| SimDuration::from_secs(s as u64)),
        });
        // Negotiation succeeded: the reconnect loop (if any) is over.
        self.retry_deadline = SimTime::MAX;
        self.retry_attempt = 0;
        if hold.is_zero() {
            self.hold_deadline = SimTime::MAX;
            self.keepalive_due = SimTime::MAX;
        } else {
            self.hold_deadline = now + hold;
            self.keepalive_due = now + hold / 3;
        }
    }

    /// Process an incoming message, producing replies and events.
    pub fn on_message(
        &mut self,
        msg: BgpMessage,
        now: SimTime,
    ) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        self.stats.msgs_in += 1;

        // Any valid message refreshes the hold timer while up.
        if self.state == FsmState::Established && self.hold_deadline != SimTime::MAX {
            if let Some(n) = &self.negotiated {
                self.hold_deadline = now + n.hold_time;
            }
        }

        match (&self.state, msg) {
            (FsmState::Idle, _) => {
                // Quietly ignore stale traffic while administratively down.
            }
            (FsmState::Connect, BgpMessage::Open(open)) => match self.validate_open(&open) {
                Ok(()) => {
                    self.accept_open(&open, now);
                    out.push(self.open_message());
                    out.push(BgpMessage::Keepalive);
                    self.stats.msgs_out += 2;
                    self.state = FsmState::OpenConfirm;
                }
                Err(e) => {
                    let (code, sub) = e.notification();
                    out.push(BgpMessage::Notification(NotificationMessage::new(
                        code, sub,
                    )));
                    self.stats.msgs_out += 1;
                    self.go_down(e.to_string(), now, &mut events);
                }
            },
            (FsmState::OpenSent, BgpMessage::Open(open)) => match self.validate_open(&open) {
                Ok(()) => {
                    self.accept_open(&open, now);
                    out.push(BgpMessage::Keepalive);
                    self.stats.msgs_out += 1;
                    self.state = FsmState::OpenConfirm;
                }
                Err(e) => {
                    let (code, sub) = e.notification();
                    out.push(BgpMessage::Notification(NotificationMessage::new(
                        code, sub,
                    )));
                    self.stats.msgs_out += 1;
                    self.go_down(e.to_string(), now, &mut events);
                }
            },
            (FsmState::OpenConfirm, BgpMessage::Keepalive) => {
                self.state = FsmState::Established;
                self.stats.flaps += 1;
                if let Some(n) = &self.negotiated {
                    if !n.hold_time.is_zero() {
                        self.hold_deadline = now + n.hold_time;
                    }
                    events.push(SessionEvent::Established(*n));
                }
            }
            (FsmState::Established, BgpMessage::Update(u)) => {
                self.stats.updates_in += 1;
                events.push(SessionEvent::Update(u));
            }
            (FsmState::Established, BgpMessage::Keepalive) => {}
            (FsmState::Established, BgpMessage::RouteRefresh) => {
                events.push(SessionEvent::RefreshRequested);
            }
            (_, BgpMessage::Notification(n)) => {
                self.go_down(
                    format!("peer notification: {:?}/{}", n.code, n.subcode),
                    now,
                    &mut events,
                );
            }
            (state, msg) => {
                // Anything else is an FSM error: notify and drop.
                let e = BgpError::FsmViolation(format!("{} in {:?}", msg.kind(), state));
                let (code, sub) = e.notification();
                out.push(BgpMessage::Notification(NotificationMessage::new(
                    code, sub,
                )));
                self.stats.msgs_out += 1;
                self.go_down(e.to_string(), now, &mut events);
            }
        }
        (out, events)
    }

    /// Drive timers. Returns keepalives, a ConnectRetry OPEN, or a
    /// hold-timer-expired teardown.
    pub fn tick(&mut self, now: SimTime) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        // Idle-hold: a session serving a max-prefix penalty automatically
        // re-enters the handshake once the penalty expires.
        if self.state == FsmState::Idle && self.idle_hold_until != SimTime::MAX {
            if now >= self.idle_hold_until {
                self.idle_hold_until = SimTime::MAX;
                if self.cfg.passive {
                    self.state = FsmState::Connect;
                } else {
                    self.state = FsmState::OpenSent;
                    out.push(self.open_message());
                    self.stats.msgs_out += 1;
                    self.arm_retry(now);
                }
            }
            return (out, events);
        }
        // ConnectRetry: an active endpoint stuck reconnecting re-sends its
        // OPEN and doubles the backoff.
        if matches!(self.state, FsmState::Connect | FsmState::OpenSent)
            && now >= self.retry_deadline
        {
            self.state = FsmState::OpenSent;
            out.push(self.open_message());
            self.stats.msgs_out += 1;
            let backoff = self.retry_backoff();
            self.retry_deadline = now + backoff;
            self.retry_attempt = self.retry_attempt.saturating_add(1);
            return (out, events);
        }
        if self.state != FsmState::Established && self.state != FsmState::OpenConfirm {
            return (out, events);
        }
        if now >= self.hold_deadline {
            out.push(BgpMessage::Notification(NotificationMessage::new(
                NotifCode::HoldTimerExpired,
                0,
            )));
            self.stats.msgs_out += 1;
            self.go_down("hold timer expired", now, &mut events);
            return (out, events);
        }
        if now >= self.keepalive_due {
            out.push(BgpMessage::Keepalive);
            self.stats.msgs_out += 1;
            if let Some(n) = &self.negotiated {
                self.keepalive_due = now + n.hold_time / 3;
            }
        }
        (out, events)
    }

    /// The earliest time at which `tick` needs to run again.
    pub fn next_deadline(&self) -> SimTime {
        self.hold_deadline
            .min(self.keepalive_due)
            .min(self.retry_deadline)
            .min(self.idle_hold_until)
    }

    /// The ConnectRetry deadline, if the retry timer is armed.
    pub fn retry_deadline(&self) -> Option<SimTime> {
        (self.retry_deadline != SimTime::MAX).then_some(self.retry_deadline)
    }

    /// Record an UPDATE sent by the owner (for statistics).
    pub fn note_update_sent(&mut self) {
        self.stats.updates_out += 1;
        self.stats.msgs_out += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, PathAttributes};
    use crate::message::{Nlri, UpdateMessage};
    use peering_netsim::Prefix;
    use std::sync::Arc;

    fn pair() -> (Session, Session) {
        let a = Session::new(
            SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1)).expect_peer(Asn(200)),
        );
        let b = Session::new(
            SessionConfig::new(Asn(200), Ipv4Addr::new(2, 2, 2, 2))
                .expect_peer(Asn(100))
                .passive(),
        );
        (a, b)
    }

    /// Run the handshake to Established, returning emitted events.
    fn establish(a: &mut Session, b: &mut Session, t: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        let mut a_to_b: Vec<BgpMessage> = a.start(t);
        let mut b_to_a: Vec<BgpMessage> = b.start(t);
        for _ in 0..8 {
            if a_to_b.is_empty() && b_to_a.is_empty() {
                break;
            }
            let mut next_a_to_b = Vec::new();
            let mut next_b_to_a = Vec::new();
            for m in a_to_b.drain(..) {
                let (out, ev) = b.on_message(m, t);
                next_b_to_a.extend(out);
                events.extend(ev);
            }
            for m in b_to_a.drain(..) {
                let (out, ev) = a.on_message(m, t);
                next_a_to_b.extend(out);
                events.extend(ev);
            }
            a_to_b = next_a_to_b;
            b_to_a = next_b_to_a;
        }
        events
    }

    #[test]
    fn handshake_reaches_established() {
        let (mut a, mut b) = pair();
        let events = establish(&mut a, &mut b, SimTime::ZERO);
        assert!(a.is_established(), "a: {:?}", a.state());
        assert!(b.is_established(), "b: {:?}", b.state());
        let est: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Established(_)))
            .collect();
        assert_eq!(est.len(), 2);
        assert_eq!(a.negotiated().unwrap().peer_asn, Asn(200));
        assert_eq!(b.negotiated().unwrap().peer_asn, Asn(100));
    }

    #[test]
    fn hold_time_negotiated_to_min() {
        let mut a = Session::new(SessionConfig {
            hold_time: SimDuration::from_secs(30),
            ..SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1))
        });
        let mut b = Session::new(SessionConfig::new(Asn(2), Ipv4Addr::new(2, 2, 2, 2)).passive());
        establish(&mut a, &mut b, SimTime::ZERO);
        assert_eq!(
            a.negotiated().unwrap().hold_time,
            SimDuration::from_secs(30)
        );
        assert_eq!(
            b.negotiated().unwrap().hold_time,
            SimDuration::from_secs(30)
        );
    }

    #[test]
    fn wrong_peer_asn_is_rejected() {
        let mut a = Session::new(
            SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1)).expect_peer(Asn(999)),
        );
        let mut b = Session::new(SessionConfig::new(Asn(200), Ipv4Addr::new(2, 2, 2, 2)).passive());
        establish(&mut a, &mut b, SimTime::ZERO);
        assert!(!a.is_established());
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn add_path_requires_both_directions() {
        let mut a = Session::new(
            SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1)).add_path(true, false),
        );
        let mut b = Session::new(
            SessionConfig::new(Asn(2), Ipv4Addr::new(2, 2, 2, 2))
                .passive()
                .add_path(false, true),
        );
        establish(&mut a, &mut b, SimTime::ZERO);
        assert!(a.is_established());
        // a offered send, b offered receive: a->b multiple paths OK.
        assert!(a.negotiated().unwrap().add_path_tx);
        assert!(!a.negotiated().unwrap().add_path_rx);
        assert!(b.negotiated().unwrap().add_path_rx);
        assert!(!b.negotiated().unwrap().add_path_tx);
    }

    #[test]
    fn update_in_established_surfaces_event() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(100)]),
            ..Default::default()
        });
        let u = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        let (_, events) = b.on_message(BgpMessage::Update(u.clone()), SimTime::from_secs(1));
        assert_eq!(events, vec![SessionEvent::Update(u)]);
        assert_eq!(b.stats.updates_in, 1);
    }

    #[test]
    fn update_before_established_is_fsm_error() {
        let (mut a, _b) = pair();
        a.start(SimTime::ZERO);
        assert_eq!(a.state(), FsmState::OpenSent);
        let attrs = Arc::new(PathAttributes::default());
        let u = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        let (out, _) = a.on_message(BgpMessage::Update(u), SimTime::ZERO);
        assert!(matches!(out[0], BgpMessage::Notification(_)));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn hold_timer_expiry_takes_session_down() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let hold = a.negotiated().unwrap().hold_time;
        let (out, events) = a.tick(SimTime::ZERO + hold + SimDuration::from_secs(1));
        assert!(matches!(out[0], BgpMessage::Notification(_)));
        assert_eq!(
            events,
            vec![SessionEvent::Down {
                reason: "hold timer expired".into()
            }]
        );
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn keepalives_refresh_hold_timer() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let ka = a.negotiated().unwrap().hold_time / 3;
        let mut now = SimTime::ZERO;
        // Exchange keepalives for several hold periods; nobody dies.
        for _ in 0..10 {
            now += ka;
            let (a_out, a_ev) = a.tick(now);
            let (b_out, b_ev) = b.tick(now);
            assert!(a_ev.is_empty() && b_ev.is_empty());
            for m in a_out {
                b.on_message(m, now);
            }
            for m in b_out {
                a.on_message(m, now);
            }
        }
        assert!(a.is_established() && b.is_established());
    }

    #[test]
    fn notification_takes_session_down() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let (_, events) = a.on_message(
            BgpMessage::Notification(NotificationMessage::new(NotifCode::Cease, 2)),
            SimTime::from_secs(1),
        );
        assert!(matches!(events[0], SessionEvent::Down { .. }));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn stop_emits_cease_and_event() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let (out, events) = a.stop(SimTime::from_secs(1));
        assert!(matches!(out[0], BgpMessage::Notification(_)));
        assert!(matches!(events[0], SessionEvent::Down { .. }));
        assert_eq!(a.state(), FsmState::Idle);
        // Stopping again is a no-op.
        let (out2, ev2) = a.stop(SimTime::from_secs(2));
        assert!(out2.is_empty() && ev2.is_empty());
    }

    #[test]
    fn restart_after_down_works() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        a.stop(SimTime::from_secs(1));
        b.stop(SimTime::from_secs(1));
        let events = establish(&mut a, &mut b, SimTime::from_secs(2));
        assert!(a.is_established() && b.is_established());
        assert!(events
            .iter()
            .any(|e| matches!(e, SessionEvent::Established(_))));
        assert_eq!(a.stats.flaps, 2);
    }

    #[test]
    fn messages_in_idle_are_ignored() {
        let (mut a, _) = pair();
        let (out, events) = a.on_message(BgpMessage::Keepalive, SimTime::ZERO);
        assert!(out.is_empty() && events.is_empty());
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn route_refresh_surfaces_event() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let (_, events) = b.on_message(BgpMessage::RouteRefresh, SimTime::from_secs(1));
        assert_eq!(events, vec![SessionEvent::RefreshRequested]);
    }

    fn retry_pair() -> (Session, Session) {
        let a = Session::new(
            SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1))
                .expect_peer(Asn(200))
                .with_connect_retry(ConnectRetryConfig::new(7)),
        );
        let b = Session::new(
            SessionConfig::new(Asn(200), Ipv4Addr::new(2, 2, 2, 2))
                .expect_peer(Asn(100))
                .passive()
                .with_connect_retry(ConnectRetryConfig::new(8)),
        );
        (a, b)
    }

    #[test]
    fn connection_loss_schedules_backed_off_retry() {
        let (mut a, mut b) = retry_pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        assert!(a.is_established());
        let t1 = SimTime::from_secs(10);
        let ev = a.drop_connection(t1);
        assert!(matches!(ev[0], SessionEvent::Down { .. }));
        // Active side waits in Connect with the retry timer armed;
        // passive side resumes listening with no timer.
        assert_eq!(a.state(), FsmState::Connect);
        let d1 = a.retry_deadline().expect("retry armed");
        assert!(d1 > t1);
        let ev = b.drop_connection(t1);
        assert!(matches!(ev[0], SessionEvent::Down { .. }));
        assert_eq!(b.state(), FsmState::Connect);
        assert_eq!(b.retry_deadline(), None);
        // Firing the retry re-sends the OPEN and doubles the backoff.
        let (out, _) = a.tick(d1);
        assert!(matches!(out[0], BgpMessage::Open(_)));
        assert_eq!(a.state(), FsmState::OpenSent);
        let d2 = a.retry_deadline().expect("still armed");
        assert!(d2.since(d1) > d1.since(t1), "backoff grows: {d1:?} {d2:?}");
        // Deliver the retried OPEN: the handshake completes.
        let (b_out, _) = b.on_message(out.into_iter().next().unwrap(), d1);
        let mut a_out = Vec::new();
        for m in b_out {
            let (o, _) = a.on_message(m, d1);
            a_out.extend(o);
        }
        for m in a_out {
            b.on_message(m, d1);
        }
        assert!(a.is_established() && b.is_established());
        assert_eq!(a.retry_deadline(), None, "retry disarmed on success");
        assert_eq!(a.stats.flaps, 2);
    }

    #[test]
    fn retry_backoff_is_deterministic_per_seed() {
        let deadlines = |seed: u64| -> Vec<SimTime> {
            let mut s = Session::new(
                SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1))
                    .with_connect_retry(ConnectRetryConfig::new(seed)),
            );
            s.start(SimTime::ZERO);
            let mut out = Vec::new();
            for _ in 0..6 {
                let d = s.retry_deadline().expect("armed");
                out.push(d);
                s.tick(d);
            }
            out
        };
        assert_eq!(deadlines(42), deadlines(42), "same seed, same schedule");
        assert_ne!(deadlines(42), deadlines(43), "different seed, jittered");
        // Backoff is monotone and capped: gaps never shrink below the
        // jittered floor of the cap.
        let ds = deadlines(42);
        for w in ds.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn lost_initial_open_is_retried() {
        let mut a = Session::new(
            SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1))
                .with_connect_retry(ConnectRetryConfig::new(3)),
        );
        let first = a.start(SimTime::ZERO);
        assert!(matches!(first[0], BgpMessage::Open(_)));
        // Pretend the OPEN was lost: the deadline passes, tick re-sends.
        let d = a.retry_deadline().expect("armed at start");
        let (out, _) = a.tick(d);
        assert!(matches!(out[0], BgpMessage::Open(_)));
        assert_eq!(a.state(), FsmState::OpenSent);
    }

    #[test]
    fn without_retry_config_down_means_idle() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let ev = a.drop_connection(SimTime::from_secs(5));
        assert!(matches!(ev[0], SessionEvent::Down { .. }));
        assert_eq!(a.state(), FsmState::Idle);
        assert_eq!(a.retry_deadline(), None);
    }

    #[test]
    fn corrupt_message_notifies_and_drops() {
        let (mut a, mut b) = retry_pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let (out, ev) = a.on_corrupt(SimTime::from_secs(5));
        match &out[0] {
            BgpMessage::Notification(n) => {
                assert_eq!(n.code, NotifCode::MessageHeaderError);
                assert_eq!(n.subcode, 1);
            }
            other => panic!("expected notification, got {other:?}"),
        }
        assert!(matches!(ev[0], SessionEvent::Down { .. }));
        assert_eq!(a.state(), FsmState::Connect);
        assert!(a.retry_deadline().is_some());
        // Idle sessions have nothing to corrupt.
        let mut idle = Session::new(SessionConfig::new(Asn(9), Ipv4Addr::new(9, 9, 9, 9)));
        let (out, ev) = idle.on_corrupt(SimTime::ZERO);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn malformed_update_is_treated_as_withdraw() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(100)]),
            ..Default::default()
        });
        let p = Prefix::v4(10, 0, 0, 0, 8);
        let u = UpdateMessage::announce(attrs, vec![Nlri::plain(p)]);
        let (out, events) = b.on_malformed_update(u, SimTime::from_secs(1));
        // RFC 7606: no NOTIFICATION, the session stays up, and the
        // announced routes come back as withdrawals.
        assert!(out.is_empty());
        assert!(b.is_established());
        match &events[0] {
            SessionEvent::Update(treated) => {
                assert_eq!(treated.withdrawn, vec![Nlri::plain(p)]);
                assert!(treated.announced.is_empty());
                assert!(treated.attrs.is_none());
            }
            other => panic!("expected treated update, got {other:?}"),
        }
        assert_eq!(b.stats.updates_in, 1);
    }

    #[test]
    fn empty_malformed_update_does_not_alias_end_of_rib() {
        let (mut a, mut b) = pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let empty = UpdateMessage {
            withdrawn: vec![],
            attrs: None,
            announced: vec![],
            trace: None,
        };
        let (out, events) = b.on_malformed_update(empty, SimTime::from_secs(1));
        assert!(out.is_empty() && events.is_empty());
        assert!(b.is_established());
    }

    #[test]
    fn malformed_update_before_established_is_fsm_error() {
        let (mut a, _b) = pair();
        a.start(SimTime::ZERO);
        let u = UpdateMessage::withdraw(vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        let (out, _) = a.on_malformed_update(u, SimTime::ZERO);
        assert!(matches!(out[0], BgpMessage::Notification(_)));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn max_prefix_cease_serves_penalty_then_reestablishes() {
        let (mut a, mut b) = retry_pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let t1 = SimTime::from_secs(10);
        let penalty = SimDuration::from_secs(60);
        let (out, ev) = a.max_prefix_cease(t1, penalty);
        match &out[0] {
            BgpMessage::Notification(n) => {
                assert_eq!(n.code, NotifCode::Cease);
                assert_eq!(n.subcode, 1);
            }
            other => panic!("expected Cease, got {other:?}"),
        }
        assert!(matches!(ev[0], SessionEvent::Down { .. }));
        // The session dwells in Idle — no retry timer races the penalty.
        assert_eq!(a.state(), FsmState::Idle);
        assert_eq!(a.retry_deadline(), None);
        assert_eq!(a.idle_penalty_until(), Some(t1 + penalty));
        assert_eq!(a.next_deadline(), t1 + penalty);
        a.check_invariants().unwrap();
        // Ticking before the deadline does nothing.
        let (out, ev) = a.tick(t1 + SimDuration::from_secs(30));
        assert!(out.is_empty() && ev.is_empty());
        assert_eq!(a.state(), FsmState::Idle);
        // At the deadline the active side re-sends its OPEN.
        let t2 = t1 + penalty;
        let (out, _) = a.tick(t2);
        assert!(matches!(out[0], BgpMessage::Open(_)));
        assert_eq!(a.state(), FsmState::OpenSent);
        assert_eq!(a.idle_penalty_until(), None);
        a.check_invariants().unwrap();
        // The peer dropped its side when the Cease arrived; restart it and
        // deliver the re-sent OPEN to prove re-establishment works.
        b.reset();
        b.start(t2);
        let mut a_to_b = out;
        let mut b_to_a: Vec<BgpMessage> = Vec::new();
        for _ in 0..8 {
            if a_to_b.is_empty() && b_to_a.is_empty() {
                break;
            }
            let mut next_a_to_b = Vec::new();
            let mut next_b_to_a = Vec::new();
            for m in a_to_b.drain(..) {
                next_b_to_a.extend(b.on_message(m, t2).0);
            }
            for m in b_to_a.drain(..) {
                next_a_to_b.extend(a.on_message(m, t2).0);
            }
            a_to_b = next_a_to_b;
            b_to_a = next_b_to_a;
        }
        assert!(a.is_established() && b.is_established());
    }

    #[test]
    fn max_prefix_cease_on_passive_side_waits_in_connect() {
        let (mut a, mut b) = retry_pair();
        establish(&mut a, &mut b, SimTime::ZERO);
        let t1 = SimTime::from_secs(10);
        let penalty = SimDuration::from_secs(45);
        let (out, _) = b.max_prefix_cease(t1, penalty);
        assert!(matches!(out[0], BgpMessage::Notification(_)));
        assert_eq!(b.state(), FsmState::Idle);
        let (out, ev) = b.tick(t1 + penalty);
        assert!(out.is_empty() && ev.is_empty());
        assert_eq!(b.state(), FsmState::Connect);
        b.check_invariants().unwrap();
        // Idle sessions with no penalty have nothing to cease.
        let mut idle = Session::new(SessionConfig::new(Asn(9), Ipv4Addr::new(9, 9, 9, 9)));
        let (out, ev) = idle.max_prefix_cease(SimTime::ZERO, penalty);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn graceful_restart_capability_is_negotiated() {
        let mut a = Session::new(
            SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1)).graceful_restart(120),
        );
        let mut b = Session::new(
            SessionConfig::new(Asn(200), Ipv4Addr::new(2, 2, 2, 2))
                .passive()
                .graceful_restart(60),
        );
        establish(&mut a, &mut b, SimTime::ZERO);
        assert!(a.is_established());
        assert_eq!(
            a.negotiated().unwrap().peer_restart_time,
            Some(SimDuration::from_secs(60))
        );
        assert_eq!(
            b.negotiated().unwrap().peer_restart_time,
            Some(SimDuration::from_secs(120))
        );
        // Without the capability nothing is advertised.
        let (mut c, mut d) = pair();
        establish(&mut c, &mut d, SimTime::ZERO);
        assert_eq!(c.negotiated().unwrap().peer_restart_time, None);
    }

    #[test]
    fn zero_hold_time_disables_timers() {
        let mut a = Session::new(SessionConfig {
            hold_time: SimDuration::ZERO,
            ..SessionConfig::new(Asn(1), Ipv4Addr::new(1, 1, 1, 1))
        });
        let mut b = Session::new(SessionConfig {
            hold_time: SimDuration::ZERO,
            passive: true,
            ..SessionConfig::new(Asn(2), Ipv4Addr::new(2, 2, 2, 2))
        });
        establish(&mut a, &mut b, SimTime::ZERO);
        assert!(a.is_established());
        assert_eq!(a.next_deadline(), SimTime::MAX);
        let (out, ev) = a.tick(SimTime::from_secs(100_000));
        assert!(out.is_empty() && ev.is_empty());
        assert!(a.is_established());
    }
}
