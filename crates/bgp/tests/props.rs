//! Property tests for the BGP implementation: codec inversions, AS-path
//! algebra, decision-process order laws, and damping monotonicity.

use peering_bgp::damping::{DampingConfig, DampingState};
use peering_bgp::wire::{decode_message, encode_message, encode_update_chunked, WireConfig};
use peering_bgp::{
    compare_routes, AsPath, BgpMessage, Community, DecisionConfig, Match, Nlri, Origin,
    PathAttributes, PeerId, Prefix, Route, RouteSource, UpdateMessage,
};
use peering_netsim::{Asn, Ipv4Net, SimDuration, SimTime};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..400_000).prop_map(Asn)
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(arb_asn(), 0..12).prop_map(|v| AsPath::from_asns(&v))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_as_path(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        any::<bool>(),
        proptest::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(|(as_path, nh, med, local_pref, atomic, communities)| {
            let mut attrs = PathAttributes {
                origin: Origin::Igp,
                as_path,
                next_hop: Ipv4Addr::from(nh),
                med,
                local_pref,
                atomic_aggregate: atomic,
                aggregator: None,
                communities: Vec::new(),
            };
            for c in communities {
                attrs.add_community(Community(c));
            }
            attrs
        })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::V4(Ipv4Net::new(Ipv4Addr::from(a), l)))
}

fn arb_update() -> impl Strategy<Value = UpdateMessage> {
    (
        proptest::collection::vec(arb_prefix(), 0..20),
        proptest::collection::vec(arb_prefix(), 1..20),
        arb_attrs(),
    )
        .prop_map(|(withdrawn, announced, attrs)| UpdateMessage {
            withdrawn: withdrawn.into_iter().map(Nlri::plain).collect(),
            attrs: Some(Arc::new(attrs)),
            announced: announced.into_iter().map(Nlri::plain).collect(),
            trace: None,
        })
}

fn arb_route() -> impl Strategy<Value = Route> {
    (
        arb_attrs(),
        0u32..50,
        prop_oneof![
            Just(RouteSource::Ebgp),
            Just(RouteSource::Ibgp),
            Just(RouteSource::Local)
        ],
        0u32..100,
        0u32..8,
    )
        .prop_map(|(attrs, peer, source, igp, path_id)| Route {
            prefix: Prefix::v4(10, 0, 0, 0, 8),
            attrs: Arc::new(attrs),
            peer: PeerId(peer),
            path_id,
            source,
            igp_cost: igp,
            learned_at: SimTime::ZERO,
            trace: None,
        })
}

/// Decode a byte string into an arbitrarily nested `Match` tree:
/// deterministic, total, and covering every combinator. The first byte
/// picks the node kind; combinators recurse on the remaining bytes, so
/// longer inputs yield deeper nesting.
fn decode_match(ops: &[u8]) -> Match {
    let Some((&head, rest)) = ops.split_first() else {
        return Match::Any;
    };
    match head % 8 {
        0 => Match::Any,
        1 => Match::PrefixIn(vec![Prefix::v4(184, 164, 224, 0, 19)]),
        2 => Match::PrefixIn(vec![]),
        3 => Match::PrefixExact(vec![Prefix::v4(
            10,
            rest.first().copied().unwrap_or(0),
            0,
            0,
            24,
        )]),
        4 => Match::LongerThan(rest.first().copied().unwrap_or(0) % 33),
        5 => Match::AsPathContains(Asn(u32::from(rest.first().copied().unwrap_or(0)))),
        6 => Match::Not(Box::new(decode_match(rest))),
        _ => {
            let (left, right) = rest.split_at(rest.len() / 2);
            if head % 2 == 0 {
                Match::All(vec![decode_match(left), decode_match(right)])
            } else {
                Match::AnyOf(vec![decode_match(left), decode_match(right)])
            }
        }
    }
}

proptest! {
    /// encode -> decode is the identity on UPDATE messages (v4, no
    /// ADD-PATH).
    #[test]
    fn update_codec_roundtrip(update in arb_update()) {
        let msg = BgpMessage::Update(update);
        let cfg = WireConfig::default();
        // Large updates are a legitimate encode error; skip those.
        if let Ok(bytes) = encode_message(&msg, cfg) {
            let (decoded, used) = decode_message(&bytes, cfg).expect("decode what we encode");
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, msg);
        }
    }

    /// Chunked encoding never loses or duplicates NLRI.
    #[test]
    fn chunked_encoding_preserves_nlri(update in arb_update()) {
        let cfg = WireConfig::default();
        let msgs = encode_update_chunked(&update, cfg).expect("chunk");
        let mut announced = Vec::new();
        let mut withdrawn = Vec::new();
        for bytes in msgs {
            let (decoded, _) = decode_message(&bytes, cfg).expect("decode");
            if let BgpMessage::Update(u) = decoded {
                announced.extend(u.announced);
                withdrawn.extend(u.withdrawn);
            }
        }
        prop_assert_eq!(announced, update.announced);
        prop_assert_eq!(withdrawn, update.withdrawn);
    }

    /// ADD-PATH ids survive the codec when negotiated.
    #[test]
    fn add_path_ids_roundtrip(prefixes in proptest::collection::vec((arb_prefix(), any::<u32>()), 1..20),
                              attrs in arb_attrs()) {
        let cfg = WireConfig { add_path: true };
        let update = UpdateMessage {
            trace: None,
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs)),
            announced: prefixes
                .iter()
                .map(|(p, id)| Nlri::with_path_id(*p, *id))
                .collect(),
        };
        if let Ok(bytes) = encode_message(&BgpMessage::Update(update.clone()), cfg) {
            let (decoded, _) = decode_message(&bytes, cfg).unwrap();
            prop_assert_eq!(decoded, BgpMessage::Update(update));
        }
    }

    /// Prepend increases hop count by exactly n and preserves the origin.
    #[test]
    fn prepend_algebra(mut path in arb_as_path(), asn in arb_asn(), n in 0usize..6) {
        let before_len = path.hop_count();
        let before_origin = path.origin_as();
        path.prepend(asn, n);
        prop_assert_eq!(path.hop_count(), before_len + n as u32);
        if n > 0 {
            prop_assert_eq!(path.first_as(), Some(asn));
            prop_assert!(path.contains(asn));
        }
        if before_origin.is_some() {
            prop_assert_eq!(path.origin_as(), before_origin);
        }
    }

    /// strip_private removes exactly the private ASNs.
    #[test]
    fn strip_private_is_exact(asns in proptest::collection::vec(prop_oneof![
        (1u32..60_000).prop_map(Asn),
        (64512u32..65535).prop_map(Asn),
    ], 0..12)) {
        let mut path = AsPath::from_asns(&asns);
        path.strip_private();
        let expect: Vec<Asn> = asns.iter().copied().filter(|a| !a.is_private()).collect();
        let got: Vec<Asn> = path.asns().collect();
        prop_assert_eq!(got, expect);
    }

    /// The decision process is a total order: antisymmetric and
    /// transitive over arbitrary route triples.
    #[test]
    fn decision_is_a_total_order(a in arb_route(), b in arb_route(), c in arb_route()) {
        let cfg = DecisionConfig::default();
        // Antisymmetry.
        prop_assert_eq!(compare_routes(&a, &b, &cfg), compare_routes(&b, &a, &cfg).reverse());
        // Reflexivity.
        prop_assert_eq!(compare_routes(&a, &a, &cfg), Ordering::Equal);
        // Transitivity of strict preference.
        if compare_routes(&a, &b, &cfg) == Ordering::Greater
            && compare_routes(&b, &c, &cfg) == Ordering::Greater
        {
            prop_assert_eq!(compare_routes(&a, &c, &cfg), Ordering::Greater);
        }
    }

    /// Damping penalties decay monotonically and suppression always ends.
    #[test]
    fn damping_decays_to_release(flaps in 1usize..20, gap_s in 1u64..600) {
        let cfg = DampingConfig::default();
        let mut d = DampingState::new();
        let p = Prefix::v4(184, 164, 224, 0, 24);
        let mut now = SimTime::ZERO;
        for _ in 0..flaps {
            now += SimDuration::from_secs(gap_s);
            d.on_withdraw(p, now, &cfg);
        }
        let p1 = d.penalty(&p, now, &cfg);
        let later = now + SimDuration::from_secs(3600);
        let p2 = d.penalty(&p, later, &cfg);
        prop_assert!(p2 <= p1, "penalty must not grow while idle");
        prop_assert!(p1 <= cfg.max_penalty + 1e-6);
        // 30 half-lives later everything is released.
        let distant = now + cfg.half_life * 30;
        prop_assert!(!d.is_suppressed(&p, distant, &cfg));
    }

    /// The decoder never panics, whatever bytes arrive from the peer —
    /// it returns a message or a structured error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(&bytes, WireConfig::default());
        let _ = decode_message(&bytes, WireConfig { add_path: true });
    }

    /// Flipping any single byte of a valid message either still decodes
    /// (to something) or errors — never panics, never reads past the end.
    #[test]
    fn decoder_survives_single_byte_corruption(update in arb_update(), pos in any::<usize>(), val in any::<u8>()) {
        let cfg = WireConfig::default();
        if let Ok(mut bytes) = encode_message(&BgpMessage::Update(update), cfg) {
            let idx = pos % bytes.len();
            bytes[idx] = val;
            let _ = decode_message(&bytes, cfg);
        }
    }

    /// Two speakers driven by a random announce/withdraw script end up
    /// consistent: the receiver's Loc-RIB holds exactly the sender's
    /// surviving originations, each with the sender's ASN as the path.
    #[test]
    fn speakers_converge_on_random_scripts(script in proptest::collection::vec(
        (0u8..200, any::<bool>()), 1..60)) {
        use peering_bgp::{PeerConfig, Speaker, SpeakerConfig};
        let mut a = Speaker::new(SpeakerConfig::new(Asn(100), Ipv4Addr::new(10, 0, 0, 1)));
        a.add_peer(PeerConfig::new(PeerId(0), Asn(200)));
        let mut b = Speaker::new(SpeakerConfig::new(Asn(200), Ipv4Addr::new(10, 0, 0, 2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(100)).passive());
        // Handshake.
        let mut to_b: Vec<BgpMessage> = a
            .start_peer(PeerId(0), SimTime::ZERO)
            .into_iter()
            .filter_map(|o| match o {
                peering_bgp::Output::Send(_, m) => Some(m),
                _ => None,
            })
            .collect();
        b.start_peer(PeerId(0), SimTime::ZERO);
        for _ in 0..8 {
            let mut to_a = Vec::new();
            for m in to_b.drain(..) {
                for o in b.on_message(PeerId(0), m, SimTime::ZERO) {
                    if let peering_bgp::Output::Send(_, msg) = o {
                        to_a.push(msg);
                    }
                }
            }
            if to_a.is_empty() {
                break;
            }
            for m in to_a {
                for o in a.on_message(PeerId(0), m, SimTime::ZERO) {
                    if let peering_bgp::Output::Send(_, msg) = o {
                        to_b.push(msg);
                    }
                }
            }
        }
        prop_assume!(a.peer_established(PeerId(0)) && b.peer_established(PeerId(0)));
        // Apply the script, forwarding every message.
        let mut live = std::collections::BTreeSet::new();
        for (i, (slot, announce)) in script.iter().enumerate() {
            let p = Prefix::v4(10, 77, *slot, 0, 24);
            let now = SimTime::from_secs(i as u64 + 1);
            let outs = if *announce {
                live.insert(p);
                a.originate(p, now)
            } else {
                live.remove(&p);
                a.withdraw_origin(p, now)
            };
            for o in outs {
                if let peering_bgp::Output::Send(_, m) = o {
                    b.on_message(PeerId(0), m, now);
                }
            }
        }
        prop_assert_eq!(b.loc_rib().len(), live.len());
        for p in &live {
            let r = b.loc_rib().get(p).expect("live prefix present");
            prop_assert_eq!(r.attrs.as_path.to_string(), "100");
        }
    }

    /// Nested `Not`/`All`/`AnyOf` combinators obey Boolean laws on
    /// arbitrary match trees: double negation, De Morgan both ways, and
    /// `Not` as complement — whatever the nesting depth.
    #[test]
    fn match_combinators_obey_boolean_laws(ops in proptest::collection::vec(any::<u8>(), 0..24),
                                           ops2 in proptest::collection::vec(any::<u8>(), 0..24),
                                           prefix in arb_prefix(),
                                           attrs in arb_attrs()) {
        let m1 = decode_match(&ops);
        let m2 = decode_match(&ops2);
        let v1 = m1.matches(&prefix, &attrs);
        let v2 = m2.matches(&prefix, &attrs);
        // Not is complement; double negation is identity.
        let not1 = Match::Not(Box::new(m1.clone()));
        prop_assert_eq!(not1.matches(&prefix, &attrs), !v1);
        let notnot = Match::Not(Box::new(not1.clone()));
        prop_assert_eq!(notnot.matches(&prefix, &attrs), v1);
        // All is conjunction, AnyOf is disjunction.
        prop_assert_eq!(Match::All(vec![m1.clone(), m2.clone()]).matches(&prefix, &attrs), v1 && v2);
        prop_assert_eq!(Match::AnyOf(vec![m1.clone(), m2.clone()]).matches(&prefix, &attrs), v1 || v2);
        // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b and ¬(a ∨ b) = ¬a ∧ ¬b.
        let lhs = Match::Not(Box::new(Match::All(vec![m1.clone(), m2.clone()])));
        let rhs = Match::AnyOf(vec![
            Match::Not(Box::new(m1.clone())),
            Match::Not(Box::new(m2.clone())),
        ]);
        prop_assert_eq!(lhs.matches(&prefix, &attrs), rhs.matches(&prefix, &attrs));
        let lhs2 = Match::Not(Box::new(Match::AnyOf(vec![m1.clone(), m2.clone()])));
        let rhs2 = Match::All(vec![
            Match::Not(Box::new(m1)),
            Match::Not(Box::new(m2)),
        ]);
        prop_assert_eq!(lhs2.matches(&prefix, &attrs), rhs2.matches(&prefix, &attrs));
        // Identity elements: All([]) is true, AnyOf([]) is false.
        prop_assert!(Match::All(vec![]).matches(&prefix, &attrs));
        prop_assert!(!Match::AnyOf(vec![]).matches(&prefix, &attrs));
    }

    /// Rule shadowing is order-dependent: against a reference "first
    /// matching terminal rule wins" evaluator, the policy engine agrees
    /// for any rule list — and swapping two overlapping rules with
    /// opposite verdicts flips the outcome exactly on their overlap.
    #[test]
    fn rule_order_is_first_match_wins(rules in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..16), any::<bool>()), 0..6),
        prefix in arb_prefix(),
        attrs in arb_attrs(),
        default_accept in any::<bool>()) {
        use peering_bgp::{Action, DefaultVerdict, Policy};
        let mut policy = Policy::accept_all().default_verdict(
            if default_accept { DefaultVerdict::Accept } else { DefaultVerdict::Reject });
        let mut decoded = Vec::new();
        for (ops, accept) in &rules {
            let m = decode_match(ops);
            let action = if *accept { Action::Accept } else { Action::Reject };
            policy = policy.rule(m.clone(), vec![action]);
            decoded.push((m, *accept));
        }
        // Reference semantics.
        let expect = decoded
            .iter()
            .find(|(m, _)| m.matches(&prefix, &attrs))
            .map(|(_, accept)| *accept)
            .unwrap_or(default_accept);
        let mut scratch = attrs.clone();
        prop_assert_eq!(policy.apply(&prefix, &mut scratch), expect);
        // Order dependence on the overlap: a later opposite-verdict rule
        // matching the same input never wins...
        if let Some((first, accept)) = decoded.first() {
            if first.matches(&prefix, &attrs) {
                let shadowed = Policy::accept_all()
                    .default_verdict(policy.default)
                    .rule(first.clone(), vec![if *accept { Action::Accept } else { Action::Reject }])
                    .rule(first.clone(), vec![if *accept { Action::Reject } else { Action::Accept }]);
                let mut s = attrs.clone();
                prop_assert_eq!(shadowed.apply(&prefix, &mut s), *accept);
                // ...but leading with the opposite rule flips the result.
                let flipped = Policy::accept_all()
                    .default_verdict(policy.default)
                    .rule(first.clone(), vec![if *accept { Action::Reject } else { Action::Accept }])
                    .rule(first.clone(), vec![if *accept { Action::Accept } else { Action::Reject }]);
                let mut s2 = attrs.clone();
                prop_assert_eq!(flipped.apply(&prefix, &mut s2), !*accept);
            }
        }
    }

    /// An empty `PrefixIn` (or `PrefixExact`) never matches anything,
    /// and a policy gated on one is inert: it behaves exactly like its
    /// default verdict.
    #[test]
    fn empty_prefix_lists_never_match(prefix in arb_prefix(), attrs in arb_attrs()) {
        use peering_bgp::{Action, Policy};
        prop_assert!(!Match::PrefixIn(vec![]).matches(&prefix, &attrs));
        prop_assert!(!Match::PrefixExact(vec![]).matches(&prefix, &attrs));
        // Negation makes them vacuously true.
        prop_assert!(Match::Not(Box::new(Match::PrefixIn(vec![]))).matches(&prefix, &attrs));
        let inert = Policy::accept_all().rule(Match::PrefixIn(vec![]), vec![Action::Reject]);
        let mut a = attrs.clone();
        prop_assert!(inert.apply(&prefix, &mut a));
        let inert_reject = Policy::reject_all().rule(Match::PrefixIn(vec![]), vec![Action::Accept]);
        let mut b = attrs.clone();
        prop_assert!(!inert_reject.apply(&prefix, &mut b));
    }

    /// Community set operations behave like a set.
    #[test]
    fn communities_are_a_sorted_set(values in proptest::collection::vec(any::<u32>(), 0..20)) {
        let mut attrs = PathAttributes::default();
        for v in &values {
            attrs.add_community(Community(*v));
        }
        let mut expect: Vec<u32> = values.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<u32> = attrs.communities.iter().map(|c| c.0).collect();
        prop_assert_eq!(got, expect);
        for v in &values {
            prop_assert!(attrs.has_community(Community(*v)));
            attrs.remove_community(Community(*v));
            prop_assert!(!attrs.has_community(Community(*v)));
        }
        prop_assert!(attrs.communities.is_empty());
    }
}
