//! Wire-codec fuzzing: round-trips for every message type plus a corpus
//! of hand-crafted malformed inputs.
//!
//! `props.rs` already covers UPDATE round-trips and pure-garbage inputs;
//! this file adds the remaining message types (OPEN with its capability
//! combinations, NOTIFICATION, KEEPALIVE, ROUTE-REFRESH), systematic
//! truncation, and the classic decoder landmines: bad markers, overlong
//! AS_PATH segment claims, and degenerate NLRI lengths. The invariant
//! throughout: `decode_message` returns `Err` on bad input — it never
//! panics and never reads out of bounds.

use peering_bgp::wire::{
    decode_message, decode_update_revised, encode_message, treatment_for_attr, ErrorTreatment,
    WireConfig, MAX_MESSAGE,
};
use peering_bgp::{
    AsPath, Asn, BgpMessage, Nlri, NotifCode, NotificationMessage, OpenMessage, PathAttributes,
    Prefix, UpdateMessage,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn arb_hold_time() -> impl Strategy<Value = u16> {
    // RFC 4271 forbids hold times 1 and 2; the decoder enforces it.
    prop_oneof![Just(0u16), 3u16..=u16::MAX]
}

fn arb_open() -> impl Strategy<Value = OpenMessage> {
    (
        // Straddle the 2-byte boundary: 4-octet ASNs exercise AS_TRANS.
        prop_oneof![1u32..65_536, 65_536u32..4_000_000_000],
        arb_hold_time(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        // Restart time rides a 12-bit field (RFC 4724); the codec masks
        // anything larger, so only in-range values round-trip losslessly.
        proptest::option::of(0u16..=0x0FFF),
    )
        .prop_map(|(asn, hold, rid, ap_send, ap_recv, gr)| {
            let mut open = OpenMessage::new(Asn(asn), hold, Ipv4Addr::from(rid));
            if ap_send || ap_recv {
                open = open.with_add_path(ap_send, ap_recv);
            }
            if let Some(secs) = gr {
                open = open.with_graceful_restart(secs);
            }
            open
        })
}

fn arb_notification() -> impl Strategy<Value = NotificationMessage> {
    (
        prop_oneof![
            Just(NotifCode::MessageHeaderError),
            Just(NotifCode::OpenMessageError),
            Just(NotifCode::UpdateMessageError),
            Just(NotifCode::HoldTimerExpired),
            Just(NotifCode::FsmError),
            Just(NotifCode::Cease),
        ],
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(code, subcode, data)| NotificationMessage {
            code,
            subcode,
            data,
        })
}

proptest! {
    #[test]
    fn open_roundtrips_with_all_capability_combinations(open in arb_open()) {
        let cfg = WireConfig::default();
        let bytes = encode_message(&BgpMessage::Open(open.clone()), cfg).expect("encode open");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode what we encode");
        prop_assert_eq!(used, bytes.len());
        let BgpMessage::Open(back) = decoded else {
            return Err(TestCaseError::fail("wrong message type".to_string()));
        };
        prop_assert_eq!(back.asn(), open.asn());
        prop_assert_eq!(back.hold_time, open.hold_time);
        prop_assert_eq!(back.router_id, open.router_id);
        prop_assert_eq!(back.add_path(), open.add_path());
        prop_assert_eq!(back.graceful_restart(), open.graceful_restart());
    }

    #[test]
    fn notification_roundtrips(notif in arb_notification()) {
        let cfg = WireConfig::default();
        let msg = BgpMessage::Notification(notif);
        let bytes = encode_message(&msg, cfg).expect("encode notification");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn every_truncation_of_a_valid_message_errors_cleanly(open in arb_open()) {
        let cfg = WireConfig::default();
        let bytes = encode_message(&BgpMessage::Open(open), cfg).expect("encode");
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_message(&bytes[..cut], cfg).is_err(),
                "truncation to {cut}/{} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn any_marker_corruption_is_rejected(open in arb_open(), pos in 0usize..16, byte in 0u8..=0xFE) {
        let cfg = WireConfig::default();
        let mut bytes = encode_message(&BgpMessage::Open(open), cfg).expect("encode");
        bytes[pos] = byte; // anything but 0xFF
        prop_assert!(decode_message(&bytes, cfg).is_err());
    }

    #[test]
    fn random_bodies_under_a_valid_header_never_panic(
        msg_type in 0u8..8,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = frame(msg_type, &body);
        let _ = decode_message(&bytes, WireConfig::default());
        let _ = decode_message(&bytes, WireConfig { add_path: true });
    }
}

#[test]
fn keepalive_and_route_refresh_roundtrip() {
    let cfg = WireConfig::default();
    for msg in [BgpMessage::Keepalive, BgpMessage::RouteRefresh] {
        let bytes = encode_message(&msg, cfg).expect("encode");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, msg);
    }
    // A KEEPALIVE with a body is illegal.
    let bloated = frame(4, &[0]);
    assert!(decode_message(&bloated, cfg).is_err());
}

/// Wrap `body` in a syntactically valid header: all-ones marker, correct
/// length, the given type.
fn frame(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = vec![0xFF; 16];
    out.extend_from_slice(&(19 + body.len() as u16).to_be_bytes());
    out.push(msg_type);
    out.extend_from_slice(body);
    out
}

/// Frame an UPDATE from raw section bytes: withdrawn routes, path
/// attributes, NLRI.
fn frame_update(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
    let mut body = (withdrawn.len() as u16).to_be_bytes().to_vec();
    body.extend_from_slice(withdrawn);
    body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    body.extend_from_slice(attrs);
    body.extend_from_slice(nlri);
    frame(2, &body)
}

#[test]
fn overlong_as_path_claim_is_rejected_not_overread() {
    let cfg = WireConfig::default();
    // A well-formed attribute header whose AS_PATH segment claims 200
    // four-byte ASNs but carries none.
    let as_path_attr = [0x40, 2, 2, /* segment: */ 2, 200];
    let bytes = frame_update(&[], &as_path_attr, &[]);
    let err = decode_message(&bytes, cfg).expect_err("overlong segment accepted");
    let msg = err.to_string();
    assert!(msg.contains("as-path"), "unexpected error: {msg}");

    // Same claim with the attribute length itself lying about the body.
    let lying_attr = [0x40, 2, 60, 2, 200];
    assert!(decode_message(&frame_update(&[], &lying_attr, &[]), cfg).is_err());
}

#[test]
fn giant_as_path_cannot_be_encoded_past_the_size_cap() {
    // 1500 ASNs x 4 bytes blows through the 4096-byte message cap; the
    // encoder must refuse rather than emit an unparseable frame.
    let attrs = Arc::new(PathAttributes {
        as_path: AsPath::from_asns(&(1..=1500u32).map(Asn).collect::<Vec<_>>()),
        ..Default::default()
    });
    let update = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
    let result = encode_message(&BgpMessage::Update(update), WireConfig::default());
    // Refusing (`Err`) is the expected outcome; a successful encode must
    // at least respect the cap.
    if let Ok(bytes) = result {
        assert!(bytes.len() <= MAX_MESSAGE, "oversized frame emitted");
    }
}

#[test]
fn degenerate_nlri_lengths() {
    let cfg = WireConfig::default();
    // Prefix length 33 is out of range for v4.
    assert!(decode_message(&frame_update(&[], &[], &[33, 0, 0, 0, 0, 0]), cfg).is_err());
    // Length byte claims 4 body bytes that are not there.
    assert!(decode_message(&frame_update(&[], &[], &[32, 1, 2]), cfg).is_err());
    // A zero-length NLRI (0.0.0.0/0, no body bytes) is *valid* — it must
    // decode, not crash, and carry the default route. Attributes must be
    // present for an announcement to be well-formed.
    let origin = [0x40, 1, 1, 0];
    let as_path = [0x40, 2, 0];
    let next_hop = [0x40, 3, 4, 10, 0, 0, 1];
    let mut attrs = Vec::new();
    attrs.extend_from_slice(&origin);
    attrs.extend_from_slice(&as_path);
    attrs.extend_from_slice(&next_hop);
    let (decoded, _) =
        decode_message(&frame_update(&[], &attrs, &[0]), cfg).expect("default route NLRI");
    let BgpMessage::Update(u) = decoded else {
        panic!("wrong type");
    };
    assert_eq!(u.announced.len(), 1);
    assert_eq!(u.announced[0].prefix, Prefix::v4(0, 0, 0, 0, 0));
    // In ADD-PATH mode the same NLRI without its 4-byte path id is
    // truncated garbage.
    assert!(decode_message(
        &frame_update(&[], &attrs, &[0]),
        WireConfig { add_path: true }
    )
    .is_err());
}

/// Raw UPDATE body (no header) from the three sections — the input
/// shape `decode_update_revised` takes.
fn update_body(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
    let mut body = (withdrawn.len() as u16).to_be_bytes().to_vec();
    body.extend_from_slice(withdrawn);
    body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    body.extend_from_slice(attrs);
    body.extend_from_slice(nlri);
    body
}

/// A well-formed mandatory attribute set: ORIGIN IGP, empty AS_PATH,
/// NEXT_HOP 10.0.0.1 — the base the corpus corrupts one attribute at a
/// time.
fn base_attrs() -> Vec<u8> {
    let mut attrs = Vec::new();
    attrs.extend_from_slice(&[0x40, 1, 1, 0]); // ORIGIN
    attrs.extend_from_slice(&[0x40, 2, 0]); // AS_PATH
    attrs.extend_from_slice(&[0x40, 3, 4, 10, 0, 0, 1]); // NEXT_HOP
    attrs
}

/// RFC 7606 corpus: each entry is (name, extra attribute bytes appended
/// after the valid mandatory set, expected classification).
#[test]
fn revised_decode_classifies_the_malformed_attribute_corpus() {
    let cfg = WireConfig::default();
    let nlri = [24, 10, 1, 2];
    let corpus: &[(&str, &[u8], ErrorTreatment)] = &[
        // ORIGIN with an undefined value: affects selection, routes go.
        (
            "origin value 9",
            &[0x40, 1, 1, 9],
            ErrorTreatment::TreatAsWithdraw,
        ),
        // ORIGIN with a wrong length claim inside a framed value.
        (
            "origin length 2",
            &[0x40, 1, 2, 0, 0],
            ErrorTreatment::TreatAsWithdraw,
        ),
        // MED shorter than 4 bytes.
        (
            "short med",
            &[0x80, 4, 2, 0, 1],
            ErrorTreatment::TreatAsWithdraw,
        ),
        // ATOMIC_AGGREGATE must be empty; a body is discardable noise.
        (
            "fat atomic-aggregate",
            &[0xC0, 6, 1, 7],
            ErrorTreatment::AttributeDiscard,
        ),
        // AGGREGATOR with a truncated body cannot affect selection.
        (
            "short aggregator",
            &[0xC0, 7, 3, 0, 1, 10],
            ErrorTreatment::AttributeDiscard,
        ),
    ];
    for (name, extra, want) in corpus {
        assert_eq!(
            treatment_for_attr(extra[1]),
            *want,
            "{name}: classification"
        );
        let mut attrs = base_attrs();
        attrs.extend_from_slice(extra);
        let body = update_body(&[], &attrs, &nlri);
        let revised = decode_update_revised(&body, cfg)
            .unwrap_or_else(|e| panic!("{name}: revised decode must not reset: {e}"));
        match want {
            ErrorTreatment::TreatAsWithdraw => {
                assert!(revised.treat_as_withdraw, "{name}: must treat as withdraw");
            }
            ErrorTreatment::AttributeDiscard => {
                assert!(!revised.treat_as_withdraw, "{name}: route must survive");
                assert_eq!(revised.discarded, vec![extra[1]], "{name}: discard list");
            }
            ErrorTreatment::SessionReset => unreachable!("corpus is recoverable-only"),
        }
        // Either way the NLRI itself parsed: the announced set is intact
        // so the receiver knows exactly which routes to drop or keep.
        assert_eq!(revised.update.announced.len(), 1, "{name}: NLRI preserved");
        // The strict decoder must refuse the same bytes — that is the
        // pre-7606 behavior the revised path exists to replace.
        assert!(
            decode_message(&frame_update(&[], &attrs, &nlri), cfg).is_err(),
            "{name}: strict decode accepted malformed input"
        );
    }
}

/// Framing damage stays fatal under RFC 7606: a lying attribute-section
/// length desynchronizes the NLRI and only a session reset is safe.
#[test]
fn revised_decode_still_resets_on_framing_errors() {
    let cfg = WireConfig::default();
    // Attribute section length overruns the body.
    let mut body = 0u16.to_be_bytes().to_vec();
    body.extend_from_slice(&500u16.to_be_bytes());
    body.push(0);
    assert!(decode_update_revised(&body, cfg).is_err());
    // An attribute whose own length claim overruns the section.
    let mut attrs = base_attrs();
    attrs.extend_from_slice(&[0x40, 2, 60, 2, 1]);
    assert!(decode_update_revised(&update_body(&[], &attrs, &[24, 10, 1, 2]), cfg).is_err());
}

proptest! {
    /// Random attribute-section garbage behind valid framing: the
    /// revised decoder never panics, and when it accepts, announced
    /// routes only ride along with intact framing.
    #[test]
    fn revised_decode_never_panics_on_attr_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let body = update_body(&[], &garbage, &[24, 10, 1, 2]);
        let _ = decode_update_revised(&body, WireConfig::default());
        let _ = decode_update_revised(&body, WireConfig { add_path: true });
    }

    /// On well-formed input the revised path is a no-op: no withdraw
    /// flag, no discards, same announced set as the strict decoder.
    #[test]
    fn revised_decode_agrees_with_strict_on_valid_updates(n_routes in 1usize..4) {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(65000)]),
            ..Default::default()
        });
        let routes: Vec<Nlri> = (0..n_routes)
            .map(|i| Nlri::plain(Prefix::v4(10, i as u8, 0, 0, 16)))
            .collect();
        let update = UpdateMessage::announce(attrs, routes);
        let cfg = WireConfig::default();
        let bytes = encode_message(&BgpMessage::Update(update.clone()), cfg).expect("encode");
        // Strip the 19-byte header to get the body the revised API takes.
        let revised = decode_update_revised(&bytes[19..], cfg).expect("valid update");
        prop_assert!(!revised.treat_as_withdraw);
        prop_assert!(revised.discarded.is_empty());
        prop_assert_eq!(revised.update.announced.len(), update.announced.len());
    }
}

#[test]
fn truncated_withdrawn_and_attr_sections_error() {
    let cfg = WireConfig::default();
    // Withdrawn-routes length larger than the remaining body.
    let mut body = 200u16.to_be_bytes().to_vec();
    body.push(24);
    assert!(decode_message(&frame(2, &body), cfg).is_err());
    // Attribute section length larger than the remaining body.
    let mut body = 0u16.to_be_bytes().to_vec();
    body.extend_from_slice(&500u16.to_be_bytes());
    body.push(0);
    assert!(decode_message(&frame(2, &body), cfg).is_err());
}
