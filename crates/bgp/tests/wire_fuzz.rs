//! Wire-codec fuzzing: round-trips for every message type plus a corpus
//! of hand-crafted malformed inputs.
//!
//! `props.rs` already covers UPDATE round-trips and pure-garbage inputs;
//! this file adds the remaining message types (OPEN with its capability
//! combinations, NOTIFICATION, KEEPALIVE, ROUTE-REFRESH), systematic
//! truncation, and the classic decoder landmines: bad markers, overlong
//! AS_PATH segment claims, and degenerate NLRI lengths. The invariant
//! throughout: `decode_message` returns `Err` on bad input — it never
//! panics and never reads out of bounds.

use peering_bgp::wire::{decode_message, encode_message, WireConfig, MAX_MESSAGE};
use peering_bgp::{
    AsPath, Asn, BgpMessage, Nlri, NotifCode, NotificationMessage, OpenMessage, PathAttributes,
    Prefix, UpdateMessage,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn arb_hold_time() -> impl Strategy<Value = u16> {
    // RFC 4271 forbids hold times 1 and 2; the decoder enforces it.
    prop_oneof![Just(0u16), 3u16..=u16::MAX]
}

fn arb_open() -> impl Strategy<Value = OpenMessage> {
    (
        // Straddle the 2-byte boundary: 4-octet ASNs exercise AS_TRANS.
        prop_oneof![1u32..65_536, 65_536u32..4_000_000_000],
        arb_hold_time(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        // Restart time rides a 12-bit field (RFC 4724); the codec masks
        // anything larger, so only in-range values round-trip losslessly.
        proptest::option::of(0u16..=0x0FFF),
    )
        .prop_map(|(asn, hold, rid, ap_send, ap_recv, gr)| {
            let mut open = OpenMessage::new(Asn(asn), hold, Ipv4Addr::from(rid));
            if ap_send || ap_recv {
                open = open.with_add_path(ap_send, ap_recv);
            }
            if let Some(secs) = gr {
                open = open.with_graceful_restart(secs);
            }
            open
        })
}

fn arb_notification() -> impl Strategy<Value = NotificationMessage> {
    (
        prop_oneof![
            Just(NotifCode::MessageHeaderError),
            Just(NotifCode::OpenMessageError),
            Just(NotifCode::UpdateMessageError),
            Just(NotifCode::HoldTimerExpired),
            Just(NotifCode::FsmError),
            Just(NotifCode::Cease),
        ],
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(code, subcode, data)| NotificationMessage {
            code,
            subcode,
            data,
        })
}

proptest! {
    #[test]
    fn open_roundtrips_with_all_capability_combinations(open in arb_open()) {
        let cfg = WireConfig::default();
        let bytes = encode_message(&BgpMessage::Open(open.clone()), cfg).expect("encode open");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode what we encode");
        prop_assert_eq!(used, bytes.len());
        let BgpMessage::Open(back) = decoded else {
            return Err(TestCaseError::fail("wrong message type".to_string()));
        };
        prop_assert_eq!(back.asn(), open.asn());
        prop_assert_eq!(back.hold_time, open.hold_time);
        prop_assert_eq!(back.router_id, open.router_id);
        prop_assert_eq!(back.add_path(), open.add_path());
        prop_assert_eq!(back.graceful_restart(), open.graceful_restart());
    }

    #[test]
    fn notification_roundtrips(notif in arb_notification()) {
        let cfg = WireConfig::default();
        let msg = BgpMessage::Notification(notif);
        let bytes = encode_message(&msg, cfg).expect("encode notification");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn every_truncation_of_a_valid_message_errors_cleanly(open in arb_open()) {
        let cfg = WireConfig::default();
        let bytes = encode_message(&BgpMessage::Open(open), cfg).expect("encode");
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_message(&bytes[..cut], cfg).is_err(),
                "truncation to {cut}/{} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn any_marker_corruption_is_rejected(open in arb_open(), pos in 0usize..16, byte in 0u8..=0xFE) {
        let cfg = WireConfig::default();
        let mut bytes = encode_message(&BgpMessage::Open(open), cfg).expect("encode");
        bytes[pos] = byte; // anything but 0xFF
        prop_assert!(decode_message(&bytes, cfg).is_err());
    }

    #[test]
    fn random_bodies_under_a_valid_header_never_panic(
        msg_type in 0u8..8,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = frame(msg_type, &body);
        let _ = decode_message(&bytes, WireConfig::default());
        let _ = decode_message(&bytes, WireConfig { add_path: true });
    }
}

#[test]
fn keepalive_and_route_refresh_roundtrip() {
    let cfg = WireConfig::default();
    for msg in [BgpMessage::Keepalive, BgpMessage::RouteRefresh] {
        let bytes = encode_message(&msg, cfg).expect("encode");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, msg);
    }
    // A KEEPALIVE with a body is illegal.
    let bloated = frame(4, &[0]);
    assert!(decode_message(&bloated, cfg).is_err());
}

/// Wrap `body` in a syntactically valid header: all-ones marker, correct
/// length, the given type.
fn frame(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = vec![0xFF; 16];
    out.extend_from_slice(&(19 + body.len() as u16).to_be_bytes());
    out.push(msg_type);
    out.extend_from_slice(body);
    out
}

/// Frame an UPDATE from raw section bytes: withdrawn routes, path
/// attributes, NLRI.
fn frame_update(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
    let mut body = (withdrawn.len() as u16).to_be_bytes().to_vec();
    body.extend_from_slice(withdrawn);
    body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    body.extend_from_slice(attrs);
    body.extend_from_slice(nlri);
    frame(2, &body)
}

#[test]
fn overlong_as_path_claim_is_rejected_not_overread() {
    let cfg = WireConfig::default();
    // A well-formed attribute header whose AS_PATH segment claims 200
    // four-byte ASNs but carries none.
    let as_path_attr = [0x40, 2, 2, /* segment: */ 2, 200];
    let bytes = frame_update(&[], &as_path_attr, &[]);
    let err = decode_message(&bytes, cfg).expect_err("overlong segment accepted");
    let msg = err.to_string();
    assert!(msg.contains("as-path"), "unexpected error: {msg}");

    // Same claim with the attribute length itself lying about the body.
    let lying_attr = [0x40, 2, 60, 2, 200];
    assert!(decode_message(&frame_update(&[], &lying_attr, &[]), cfg).is_err());
}

#[test]
fn giant_as_path_cannot_be_encoded_past_the_size_cap() {
    // 1500 ASNs x 4 bytes blows through the 4096-byte message cap; the
    // encoder must refuse rather than emit an unparseable frame.
    let attrs = Arc::new(PathAttributes {
        as_path: AsPath::from_asns(&(1..=1500u32).map(Asn).collect::<Vec<_>>()),
        ..Default::default()
    });
    let update = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
    let result = encode_message(&BgpMessage::Update(update), WireConfig::default());
    // Refusing (`Err`) is the expected outcome; a successful encode must
    // at least respect the cap.
    if let Ok(bytes) = result {
        assert!(bytes.len() <= MAX_MESSAGE, "oversized frame emitted");
    }
}

#[test]
fn degenerate_nlri_lengths() {
    let cfg = WireConfig::default();
    // Prefix length 33 is out of range for v4.
    assert!(decode_message(&frame_update(&[], &[], &[33, 0, 0, 0, 0, 0]), cfg).is_err());
    // Length byte claims 4 body bytes that are not there.
    assert!(decode_message(&frame_update(&[], &[], &[32, 1, 2]), cfg).is_err());
    // A zero-length NLRI (0.0.0.0/0, no body bytes) is *valid* — it must
    // decode, not crash, and carry the default route. Attributes must be
    // present for an announcement to be well-formed.
    let origin = [0x40, 1, 1, 0];
    let as_path = [0x40, 2, 0];
    let next_hop = [0x40, 3, 4, 10, 0, 0, 1];
    let mut attrs = Vec::new();
    attrs.extend_from_slice(&origin);
    attrs.extend_from_slice(&as_path);
    attrs.extend_from_slice(&next_hop);
    let (decoded, _) =
        decode_message(&frame_update(&[], &attrs, &[0]), cfg).expect("default route NLRI");
    let BgpMessage::Update(u) = decoded else {
        panic!("wrong type");
    };
    assert_eq!(u.announced.len(), 1);
    assert_eq!(u.announced[0].prefix, Prefix::v4(0, 0, 0, 0, 0));
    // In ADD-PATH mode the same NLRI without its 4-byte path id is
    // truncated garbage.
    assert!(decode_message(
        &frame_update(&[], &attrs, &[0]),
        WireConfig { add_path: true }
    )
    .is_err());
}

#[test]
fn truncated_withdrawn_and_attr_sections_error() {
    let cfg = WireConfig::default();
    // Withdrawn-routes length larger than the remaining body.
    let mut body = 200u16.to_be_bytes().to_vec();
    body.push(24);
    assert!(decode_message(&frame(2, &body), cfg).is_err());
    // Attribute section length larger than the remaining body.
    let mut body = 0u16.to_be_bytes().to_vec();
    body.extend_from_slice(&500u16.to_be_bytes());
    body.push(0);
    assert!(decode_message(&frame(2, &body), cfg).is_err());
}
