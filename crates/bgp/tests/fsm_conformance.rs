//! RFC 4271 §8 conformance: the full state × event matrix.
//!
//! Every FSM state is driven through every input class — administrative
//! (ManualStart/ManualStop), transport (connection loss, corrupt bytes),
//! every message type, and every timer (ConnectRetry, hold, keepalive) —
//! and checked against an explicit expected-transition table. A
//! completeness check guarantees no pair is silently skipped.
//!
//! The subject is an *active, retry-enabled* endpoint (the shape every
//! production speaker in this codebase uses), so a non-administrative
//! down lands in `Connect` with the ConnectRetry timer armed rather than
//! `Idle`. A second, smaller table pins the classic retry-less behavior.

use peering_bgp::{
    AsPath, Asn, BgpMessage, ConnectRetryConfig, FsmState, Nlri, NotifCode, NotificationMessage,
    OpenMessage, PathAttributes, Prefix, Session, SessionConfig, SessionEvent, UpdateMessage,
};
use peering_netsim::{SimDuration, SimTime};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Input classes, one per RFC 4271 event group the simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ev {
    /// ManualStart.
    Start,
    /// ManualStop.
    Stop,
    /// TcpConnectionFails / transport reset, no message on the wire.
    DropConn,
    /// Undecodable bytes from the transport.
    Corrupt,
    /// BGPOpen received.
    MsgOpen,
    /// KeepAliveMsg received.
    MsgKeepalive,
    /// UpdateMsg received.
    MsgUpdate,
    /// NotifMsg received.
    MsgNotification,
    /// Route-refresh received.
    MsgRouteRefresh,
    /// ConnectRetryTimer expires (tick at the armed deadline, or a
    /// no-op tick when the timer is idle).
    RetryExpire,
    /// HoldTimer expires (tick past the hold time).
    HoldExpire,
    /// KeepaliveTimer fires (tick past one third of the hold time).
    KeepaliveDue,
}

const EVENTS: [Ev; 12] = [
    Ev::Start,
    Ev::Stop,
    Ev::DropConn,
    Ev::Corrupt,
    Ev::MsgOpen,
    Ev::MsgKeepalive,
    Ev::MsgUpdate,
    Ev::MsgNotification,
    Ev::MsgRouteRefresh,
    Ev::RetryExpire,
    Ev::HoldExpire,
    Ev::KeepaliveDue,
];

const STATES: [FsmState; 5] = [
    FsmState::Idle,
    FsmState::Connect,
    FsmState::OpenSent,
    FsmState::OpenConfirm,
    FsmState::Established,
];

/// What the transition must emit on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Nothing,
    /// An OPEN (possibly the only message).
    Open,
    /// OPEN followed by KEEPALIVE (passive-side handshake reply).
    OpenKeepalive,
    Keepalive,
    Notification,
}

/// Which owner-visible event the transition must surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Surfaced {
    None,
    Down,
    Established,
    Update,
    Refresh,
}

fn subject() -> Session {
    Session::new(
        SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1))
            .expect_peer(Asn(200))
            .with_connect_retry(ConnectRetryConfig::new(7)),
    )
}

fn peer_open() -> BgpMessage {
    BgpMessage::Open(OpenMessage::new(Asn(200), 90, Ipv4Addr::new(2, 2, 2, 2)))
}

fn an_update() -> BgpMessage {
    let attrs = Arc::new(PathAttributes {
        as_path: AsPath::from_asns(&[Asn(200)]),
        ..Default::default()
    });
    BgpMessage::Update(UpdateMessage::announce(
        attrs,
        vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))],
    ))
}

/// Drive a fresh subject into `state`, returning it and the current time.
fn reach(state: FsmState) -> (Session, SimTime) {
    let t0 = SimTime::ZERO;
    let mut s = subject();
    match state {
        FsmState::Idle => (s, t0),
        FsmState::OpenSent => {
            s.start(t0);
            (s, t0)
        }
        FsmState::OpenConfirm => {
            s.start(t0);
            s.on_message(peer_open(), t0);
            (s, t0)
        }
        FsmState::Established => {
            s.start(t0);
            s.on_message(peer_open(), t0);
            s.on_message(BgpMessage::Keepalive, t0);
            (s, t0)
        }
        FsmState::Connect => {
            // An active endpoint visits Connect only after losing an
            // established session (the simulated transport never blocks).
            s.start(t0);
            s.on_message(peer_open(), t0);
            s.on_message(BgpMessage::Keepalive, t0);
            let t = SimTime::from_secs(10);
            s.drop_connection(t);
            (s, t)
        }
    }
}

/// Apply one event class at `now`.
fn apply(s: &mut Session, ev: Ev, now: SimTime) -> (Vec<BgpMessage>, Vec<SessionEvent>) {
    match ev {
        Ev::Start => (s.start(now), Vec::new()),
        Ev::Stop => s.stop(now),
        Ev::DropConn => (Vec::new(), s.drop_connection(now)),
        Ev::Corrupt => s.on_corrupt(now),
        Ev::MsgOpen => s.on_message(peer_open(), now),
        Ev::MsgKeepalive => s.on_message(BgpMessage::Keepalive, now),
        Ev::MsgUpdate => s.on_message(an_update(), now),
        Ev::MsgNotification => s.on_message(
            BgpMessage::Notification(NotificationMessage::new(NotifCode::Cease, 2)),
            now,
        ),
        Ev::MsgRouteRefresh => s.on_message(BgpMessage::RouteRefresh, now),
        Ev::RetryExpire => match s.retry_deadline() {
            Some(d) => s.tick(d),
            None => s.tick(now + SimDuration::from_secs(1)),
        },
        // Hold time is 90 s on both ends; one third of it schedules the
        // keepalive. In Connect/OpenSent these instants lie beyond the
        // armed retry deadline, so the reconnect fires — that *is* the
        // observable behavior of waiting that long in those states.
        Ev::HoldExpire => s.tick(now + SimDuration::from_secs(91)),
        Ev::KeepaliveDue => s.tick(now + SimDuration::from_secs(31)),
    }
}

fn classify(out: &[BgpMessage]) -> Emit {
    match out {
        [] => Emit::Nothing,
        [BgpMessage::Open(_)] => Emit::Open,
        [BgpMessage::Open(_), BgpMessage::Keepalive] => Emit::OpenKeepalive,
        [BgpMessage::Keepalive] => Emit::Keepalive,
        [BgpMessage::Notification(_)] => Emit::Notification,
        other => panic!("unclassifiable emission {other:?}"),
    }
}

fn surfaced(events: &[SessionEvent]) -> Surfaced {
    match events {
        [] => Surfaced::None,
        [SessionEvent::Down { .. }] => Surfaced::Down,
        [SessionEvent::Established(_)] => Surfaced::Established,
        [SessionEvent::Update(_)] => Surfaced::Update,
        [SessionEvent::RefreshRequested] => Surfaced::Refresh,
        other => panic!("unclassifiable events {other:?}"),
    }
}

/// One row: in `state`, input `ev` must emit `emit`, surface `event`,
/// and land in `next`.
struct Row(FsmState, Ev, Emit, Surfaced, FsmState);

#[rustfmt::skip]
fn transition_table() -> Vec<Row> {
    use FsmState::*;
    vec![
        // ---- Idle: everything but ManualStart is ignored ----
        Row(Idle, Ev::Start,           Emit::Open,          Surfaced::None,        OpenSent),
        Row(Idle, Ev::Stop,            Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::DropConn,        Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::Corrupt,         Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::MsgOpen,         Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::MsgKeepalive,    Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::MsgUpdate,       Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::MsgNotification, Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::MsgRouteRefresh, Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::RetryExpire,     Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::HoldExpire,      Emit::Nothing,       Surfaced::None,        Idle),
        Row(Idle, Ev::KeepaliveDue,    Emit::Nothing,       Surfaced::None,        Idle),
        // ---- Connect: waiting out the retry backoff ----
        Row(Connect, Ev::Start,           Emit::Nothing,       Surfaced::None, Connect),
        Row(Connect, Ev::Stop,            Emit::Nothing,       Surfaced::None, Idle),
        Row(Connect, Ev::DropConn,        Emit::Nothing,       Surfaced::None, Connect),
        Row(Connect, Ev::Corrupt,         Emit::Notification,  Surfaced::None, Connect),
        Row(Connect, Ev::MsgOpen,         Emit::OpenKeepalive, Surfaced::None, OpenConfirm),
        Row(Connect, Ev::MsgKeepalive,    Emit::Notification,  Surfaced::None, Connect),
        Row(Connect, Ev::MsgUpdate,       Emit::Notification,  Surfaced::None, Connect),
        Row(Connect, Ev::MsgNotification, Emit::Nothing,       Surfaced::None, Connect),
        Row(Connect, Ev::MsgRouteRefresh, Emit::Notification,  Surfaced::None, Connect),
        Row(Connect, Ev::RetryExpire,     Emit::Open,          Surfaced::None, OpenSent),
        Row(Connect, Ev::HoldExpire,      Emit::Open,          Surfaced::None, OpenSent),
        Row(Connect, Ev::KeepaliveDue,    Emit::Open,          Surfaced::None, OpenSent),
        // ---- OpenSent: our OPEN is out, waiting for theirs ----
        Row(OpenSent, Ev::Start,           Emit::Nothing,      Surfaced::None, OpenSent),
        Row(OpenSent, Ev::Stop,            Emit::Nothing,      Surfaced::None, Idle),
        Row(OpenSent, Ev::DropConn,        Emit::Nothing,      Surfaced::None, Connect),
        Row(OpenSent, Ev::Corrupt,         Emit::Notification, Surfaced::None, Connect),
        Row(OpenSent, Ev::MsgOpen,         Emit::Keepalive,    Surfaced::None, OpenConfirm),
        Row(OpenSent, Ev::MsgKeepalive,    Emit::Notification, Surfaced::None, Connect),
        Row(OpenSent, Ev::MsgUpdate,       Emit::Notification, Surfaced::None, Connect),
        Row(OpenSent, Ev::MsgNotification, Emit::Nothing,      Surfaced::None, Connect),
        Row(OpenSent, Ev::MsgRouteRefresh, Emit::Notification, Surfaced::None, Connect),
        Row(OpenSent, Ev::RetryExpire,     Emit::Open,         Surfaced::None, OpenSent),
        Row(OpenSent, Ev::HoldExpire,      Emit::Open,         Surfaced::None, OpenSent),
        Row(OpenSent, Ev::KeepaliveDue,    Emit::Open,         Surfaced::None, OpenSent),
        // ---- OpenConfirm: OPENs exchanged, first KEEPALIVE pending ----
        Row(OpenConfirm, Ev::Start,           Emit::Nothing,      Surfaced::None,        OpenConfirm),
        Row(OpenConfirm, Ev::Stop,            Emit::Notification, Surfaced::None,        Idle),
        Row(OpenConfirm, Ev::DropConn,        Emit::Nothing,      Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::Corrupt,         Emit::Notification, Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::MsgOpen,         Emit::Notification, Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::MsgKeepalive,    Emit::Nothing,      Surfaced::Established, Established),
        Row(OpenConfirm, Ev::MsgUpdate,       Emit::Notification, Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::MsgNotification, Emit::Nothing,      Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::MsgRouteRefresh, Emit::Notification, Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::RetryExpire,     Emit::Nothing,      Surfaced::None,        OpenConfirm),
        Row(OpenConfirm, Ev::HoldExpire,      Emit::Notification, Surfaced::None,        Connect),
        Row(OpenConfirm, Ev::KeepaliveDue,    Emit::Keepalive,    Surfaced::None,        OpenConfirm),
        // ---- Established: the session is carrying routes ----
        Row(Established, Ev::Start,           Emit::Nothing,      Surfaced::None,    Established),
        Row(Established, Ev::Stop,            Emit::Notification, Surfaced::Down,    Idle),
        Row(Established, Ev::DropConn,        Emit::Nothing,      Surfaced::Down,    Connect),
        Row(Established, Ev::Corrupt,         Emit::Notification, Surfaced::Down,    Connect),
        Row(Established, Ev::MsgOpen,         Emit::Notification, Surfaced::Down,    Connect),
        Row(Established, Ev::MsgKeepalive,    Emit::Nothing,      Surfaced::None,    Established),
        Row(Established, Ev::MsgUpdate,       Emit::Nothing,      Surfaced::Update,  Established),
        Row(Established, Ev::MsgNotification, Emit::Nothing,      Surfaced::Down,    Connect),
        Row(Established, Ev::MsgRouteRefresh, Emit::Nothing,      Surfaced::Refresh, Established),
        Row(Established, Ev::RetryExpire,     Emit::Nothing,      Surfaced::None,    Established),
        Row(Established, Ev::HoldExpire,      Emit::Notification, Surfaced::Down,    Connect),
        Row(Established, Ev::KeepaliveDue,    Emit::Keepalive,    Surfaced::None,    Established),
    ]
}

#[test]
fn state_event_matrix_matches_table() {
    for Row(state, ev, want_emit, want_surfaced, want_next) in transition_table() {
        let (mut s, now) = reach(state);
        assert_eq!(s.state(), state, "harness failed to reach {state:?}");
        let (out, events) = apply(&mut s, ev, now);
        assert_eq!(
            classify(&out),
            want_emit,
            "{state:?} x {ev:?}: wrong emission {out:?}"
        );
        assert_eq!(
            surfaced(&events),
            want_surfaced,
            "{state:?} x {ev:?}: wrong surfaced events {events:?}"
        );
        assert_eq!(s.state(), want_next, "{state:?} x {ev:?}: wrong next state");
        s.check_invariants()
            .unwrap_or_else(|e| panic!("{state:?} x {ev:?}: invariant broken: {e}"));
    }
}

#[test]
fn table_covers_every_state_event_pair_exactly_once() {
    let mut seen: HashSet<(FsmState, Ev)> = HashSet::new();
    for Row(state, ev, ..) in transition_table() {
        assert!(seen.insert((state, ev)), "duplicate row {state:?} x {ev:?}");
    }
    assert_eq!(
        seen.len(),
        STATES.len() * EVENTS.len(),
        "matrix incomplete: missing {:?}",
        STATES
            .iter()
            .flat_map(|s| EVENTS.iter().map(move |e| (*s, *e)))
            .filter(|p| !seen.contains(p))
            .collect::<Vec<_>>()
    );
}

/// RFC 4486 §4 max-prefix teardown: a lone Cease (subcode 1) from any
/// non-Idle state, then a fixed idle-hold penalty in Idle that `tick`
/// ends with an automatic re-handshake at exactly the deadline — and
/// not an instant before.
#[test]
fn max_prefix_cease_serves_a_fixed_idle_hold_from_every_state() {
    let penalty = SimDuration::from_secs(60);
    for state in [
        FsmState::Connect,
        FsmState::OpenSent,
        FsmState::OpenConfirm,
        FsmState::Established,
    ] {
        let (mut s, now) = reach(state);
        let (out, events) = s.max_prefix_cease(now, penalty);
        match out.as_slice() {
            [BgpMessage::Notification(n)] => {
                assert_eq!((n.code, n.subcode), (NotifCode::Cease, 1), "{state:?}");
            }
            other => panic!("{state:?}: expected a lone Cease, got {other:?}"),
        }
        // Only a torn-down *established* session surfaces Down.
        let want = if state == FsmState::Established {
            Surfaced::Down
        } else {
            Surfaced::None
        };
        assert_eq!(surfaced(&events), want, "{state:?}");
        assert_eq!(s.state(), FsmState::Idle, "{state:?}");
        assert_eq!(s.idle_penalty_until(), Some(now + penalty), "{state:?}");
        // One instant shy of the deadline: still idle, nothing emitted.
        let (out, ev) = s.tick(now + penalty - SimDuration::from_millis(1));
        assert!(
            out.is_empty() && ev.is_empty(),
            "{state:?}: the penalty must hold to the deadline"
        );
        assert_eq!(s.state(), FsmState::Idle, "{state:?}");
        // At the deadline: the active endpoint re-opens by itself.
        let (out, _) = s.tick(now + penalty);
        assert!(
            matches!(out.as_slice(), [BgpMessage::Open(_)]),
            "{state:?}: re-open at the deadline, got {out:?}"
        );
        assert_eq!(s.state(), FsmState::OpenSent, "{state:?}");
        assert_eq!(s.idle_penalty_until(), None, "{state:?}");
        s.check_invariants().unwrap();
    }
    // From Idle the cease is a no-op: nothing to tear down, no penalty.
    let (mut s, now) = reach(FsmState::Idle);
    let (out, events) = s.max_prefix_cease(now, penalty);
    assert!(out.is_empty() && events.is_empty());
    assert_eq!(s.idle_penalty_until(), None);
}

/// A ManualStart overrides a pending idle-hold penalty: the operator
/// clearing the session beats the automatic timer.
#[test]
fn manual_start_overrides_idle_hold_penalty() {
    let (mut s, now) = reach(FsmState::Established);
    s.max_prefix_cease(now, SimDuration::from_secs(300));
    let restart = now + SimDuration::from_secs(5);
    let out = s.start(restart);
    assert!(matches!(out.as_slice(), [BgpMessage::Open(_)]));
    assert_eq!(s.state(), FsmState::OpenSent);
    assert_eq!(s.idle_penalty_until(), None);
    s.check_invariants().unwrap();
}

/// The classic retry-less endpoint: any non-administrative loss lands in
/// `Idle` and stays there until a ManualStart.
#[test]
fn without_retry_every_loss_is_terminal_idle() {
    let established = || {
        let mut s = Session::new(
            SessionConfig::new(Asn(100), Ipv4Addr::new(1, 1, 1, 1)).expect_peer(Asn(200)),
        );
        s.start(SimTime::ZERO);
        s.on_message(peer_open(), SimTime::ZERO);
        s.on_message(BgpMessage::Keepalive, SimTime::ZERO);
        assert!(s.is_established());
        s
    };
    for ev in [
        Ev::DropConn,
        Ev::Corrupt,
        Ev::MsgNotification,
        Ev::HoldExpire,
    ] {
        let mut s = established();
        let (_, events) = apply(&mut s, ev, SimTime::from_secs(5));
        assert_eq!(surfaced(&events), Surfaced::Down, "{ev:?}");
        assert_eq!(s.state(), FsmState::Idle, "{ev:?}");
        assert_eq!(s.retry_deadline(), None, "{ev:?}: no timer without retry");
        // And nothing ever happens again until a ManualStart.
        let (out, ev2) = s.tick(SimTime::from_secs(100_000));
        assert!(out.is_empty() && ev2.is_empty());
        s.check_invariants().unwrap();
    }
}
