//! E1 timing companion: how fast the router ingests tables of the sizes
//! Figure 2 plots (the memory numbers themselves come from
//! `repro -- fig2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peering_bench::fig2;

fn bench_table_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_table_fill");
    group.sample_size(10);
    for &(peers, routes) in &[(1usize, 5_000usize), (5, 5_000), (10, 5_000), (5, 20_000)] {
        group.throughput(Throughput::Elements((peers * routes) as u64));
        group.bench_with_input(
            BenchmarkId::new("ingest", format!("{peers}peers_x_{routes}routes")),
            &(peers, routes),
            |b, &(p, r)| {
                b.iter(|| {
                    let point = fig2::measure(p, r);
                    assert!(point.bytes_interned > 0);
                    point
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table_fill);
criterion_main!(benches);
