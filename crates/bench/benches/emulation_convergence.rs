//! E6 timing: intradomain emulation convergence (the §4.2 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peering_emulation::build_from_pops;
use peering_topology::{hurricane_electric, small_ring};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulation_convergence");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("ring", 8), |b| {
        b.iter(|| {
            let mut pe = build_from_pops(&small_ring(8), 64512, 1);
            pe.converge(10_000_000);
            assert_eq!(pe.reachability(), 1.0);
            pe.emu.total_memory()
        })
    });
    group.bench_function(BenchmarkId::new("hurricane_electric", 24), |b| {
        b.iter(|| {
            let mut pe = build_from_pops(&hurricane_electric(), 64600, 1);
            pe.converge(10_000_000);
            assert_eq!(pe.reachability(), 1.0);
            pe.emu.total_memory()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
