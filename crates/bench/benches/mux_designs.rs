//! E7 timing: route fan-out through the two mux designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peering_core::{MuxDesign, MuxHarness};
use peering_netsim::Prefix;

fn bench_mux(c: &mut Criterion) {
    let mut group = c.benchmark_group("mux_fanout");
    group.sample_size(10);
    for design in [MuxDesign::PerPeerSessions, MuxDesign::AddPathMux] {
        for &(upstreams, clients) in &[(5usize, 2usize), (20, 4)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{design:?}"), format!("{upstreams}up_{clients}cl")),
                &(upstreams, clients),
                |b, &(u, cl)| {
                    b.iter(|| {
                        let mut h = MuxHarness::build(design, u, cl, 1);
                        for i in 0..u {
                            h.announce_from_upstream(i, Prefix::v4(30, 0, i as u8, 0, 24));
                        }
                        assert!(h.client_paths(0, &Prefix::v4(30, 0, 0, 0, 24)) >= 1);
                        h.stats()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mux);
criterion_main!(benches);
