//! Timing of valley-free propagation — the operation behind every
//! announcement the testbed executes (E3/E4 and every scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peering_netsim::Prefix;
use peering_topology::routing::{propagate, Announcement};
use peering_topology::{Internet, InternetConfig};

fn bench_propagation(c: &mut Criterion) {
    let small = Internet::build(InternetConfig::small(1));
    let eval = Internet::build(InternetConfig::eval(1));
    let mut group = c.benchmark_group("propagation");
    for (name, net) in [("small_121as", &small), ("eval_6000as", &eval)] {
        let origin = net.graph.indices().last().expect("non-empty");
        let prefix = Prefix::v4(203, 0, 113, 0, 24);
        group.bench_with_input(BenchmarkId::new("single_origin", name), net, |b, net| {
            b.iter(|| {
                let r = propagate(&net.graph, &[Announcement::simple(origin, prefix)]);
                assert!(r.reach_count() > 0);
                r
            });
        });
        // Anycast / hijack: two competing announcements.
        let second = net.graph.indices().next().expect("non-empty");
        group.bench_with_input(BenchmarkId::new("two_origins", name), net, |b, net| {
            b.iter(|| {
                propagate(
                    &net.graph,
                    &[
                        Announcement::simple(origin, prefix),
                        Announcement::simple(second, prefix),
                    ],
                )
            });
        });
    }
    group.finish();
}

fn bench_cones(c: &mut Criterion) {
    let eval = Internet::build(InternetConfig::eval(1));
    c.bench_function("customer_cones_eval_6000as", |b| {
        b.iter(|| peering_topology::cone::customer_cones(&eval.graph));
    });
}

criterion_group!(benches, bench_propagation, bench_cones);
criterion_main!(benches);
