//! Decision-process and damping micro-benchmarks: the per-update cost
//! inside a speaker.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use peering_bgp::{
    compare_routes, damping::DampingConfig, damping::DampingState, decision::best_route, AsPath,
    DecisionConfig, PathAttributes, PeerId, Prefix, Route, RouteSource,
};
use peering_netsim::{Asn, SimDuration, SimTime};
use std::sync::Arc;

fn candidates(n: usize) -> Vec<Route> {
    (0..n)
        .map(|i| Route {
            prefix: Prefix::v4(10, 0, 0, 0, 8),
            attrs: Arc::new(PathAttributes {
                as_path: AsPath::from_asns(
                    &(0..(2 + i % 5))
                        .map(|k| Asn(100 + k as u32))
                        .collect::<Vec<_>>(),
                ),
                local_pref: Some(100 + (i % 3) as u32),
                med: Some((i % 7) as u32),
                ..Default::default()
            }),
            peer: PeerId(i as u32),
            path_id: 0,
            source: RouteSource::Ebgp,
            igp_cost: (i % 11) as u32,
            learned_at: SimTime::ZERO,
            trace: None,
        })
        .collect()
}

fn bench_decision(c: &mut Criterion) {
    let cfg = DecisionConfig::default();
    let mut group = c.benchmark_group("decision");
    for n in [2usize, 16, 128, 669] {
        let cands = candidates(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("best_of_{n}"), |b| {
            b.iter(|| best_route(cands.iter(), &cfg).cloned())
        });
    }
    let two = candidates(2);
    group.bench_function("compare_pair", |b| {
        b.iter(|| compare_routes(&two[0], &two[1], &cfg))
    });
    group.finish();
}

fn bench_damping(c: &mut Criterion) {
    let cfg = DampingConfig::default();
    c.bench_function("damping_flap_cycle", |b| {
        b.iter(|| {
            let mut d = DampingState::new();
            let p = Prefix::v4(184, 164, 224, 0, 24);
            let mut now = SimTime::ZERO;
            for _ in 0..16 {
                now += SimDuration::from_secs(30);
                d.on_announce(p, now, &cfg);
                now += SimDuration::from_secs(30);
                d.on_withdraw(p, now, &cfg);
            }
            d.is_suppressed(&p, now, &cfg)
        })
    });
}

criterion_group!(benches, bench_decision, bench_damping);
criterion_main!(benches);
