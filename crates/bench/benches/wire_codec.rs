//! Wire codec micro-benchmarks: the byte-level cost of a software
//! router's front end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use peering_bgp::wire::{decode_message, encode_message, encode_update_chunked, WireConfig};
use peering_bgp::{AsPath, BgpMessage, Nlri, OpenMessage, PathAttributes, Prefix, UpdateMessage};
use peering_netsim::Asn;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn sample_update(n_prefixes: usize) -> BgpMessage {
    let attrs = Arc::new(PathAttributes {
        as_path: AsPath::from_asns(&[Asn(47065), Asn(3356), Asn(1299), Asn(15169)]),
        next_hop: Ipv4Addr::new(80, 249, 208, 1),
        med: Some(10),
        ..Default::default()
    });
    let nlri: Vec<Nlri> = (0..n_prefixes)
        .map(|i| Nlri::plain(Prefix::v4(20, (i >> 8) as u8, i as u8, 0, 24)))
        .collect();
    BgpMessage::Update(UpdateMessage::announce(attrs, nlri))
}

fn bench_codec(c: &mut Criterion) {
    let cfg = WireConfig::default();
    let update = sample_update(100);
    let encoded = encode_message(&update, cfg).expect("encode");
    let open = BgpMessage::Open(
        OpenMessage::new(Asn(47065), 90, Ipv4Addr::new(1, 1, 1, 1)).with_add_path(true, true),
    );
    let open_bytes = encode_message(&open, cfg).expect("encode");

    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Elements(100));
    group.bench_function("encode_update_100_nlri", |b| {
        b.iter(|| encode_message(&update, cfg).expect("encode"))
    });
    group.bench_function("decode_update_100_nlri", |b| {
        b.iter(|| decode_message(&encoded, cfg).expect("decode"))
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_open", |b| {
        b.iter(|| encode_message(&open, cfg).expect("encode"))
    });
    group.bench_function("decode_open", |b| {
        b.iter(|| decode_message(&open_bytes, cfg).expect("decode"))
    });
    let big = match sample_update(5_000) {
        BgpMessage::Update(u) => u,
        _ => unreachable!(),
    };
    group.throughput(Throughput::Elements(5_000));
    group.bench_function("encode_update_chunked_5000_nlri", |b| {
        b.iter(|| encode_update_chunked(&big, cfg).expect("encode"))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
