//! End-to-end testbed operation timings: build, announce, measure.

use criterion::{criterion_group, criterion_main, Criterion};
use peering_core::{Testbed, TestbedConfig};
use peering_netsim::SimDuration;

fn bench_testbed(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(10);
    group.bench_function("build_small", |b| {
        b.iter(|| Testbed::build(TestbedConfig::small(1)))
    });
    group.bench_function("announce_and_ping", |b| {
        let mut tb = Testbed::build(TestbedConfig::small(1));
        let id = tb.new_experiment("bench", "bench", &[0, 1]).expect("exp");
        let client = tb.clients[&id].clone();
        let vantage = peering_topology::AsIdx(40);
        b.iter(|| {
            tb.advance(SimDuration::from_secs(7200)); // keep damping quiet
            let reach = tb
                .announce(id, client.announce_everywhere())
                .expect("announce");
            let rtt = tb.ping(vantage, &client.prefix);
            (reach, rtt)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_testbed);
criterion_main!(benches);
