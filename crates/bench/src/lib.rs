//! Benchmark harness: regenerate every table and figure in the paper's
//! evaluation, plus the ablations DESIGN.md calls out.
//!
//! Each experiment lives in its own module and returns a serializable
//! result struct; the `repro` binary runs them and renders paper-style
//! tables, and the Criterion benches time the hot paths. Experiment ids
//! follow DESIGN.md:
//!
//! * E1 [`fig2`] — Figure 2, BGP table memory vs prefixes × peers.
//! * E2 [`table1`] — Table 1, the capability matrix.
//! * E3 [`peering41`] — §4.1 peering counts at AMS-IX.
//! * E4 [`reach41`] — §4.1 reachability (prefix share + Alexa catalog).
//! * E5 [`routedist41`] — §4.2's per-peer route-count distribution.
//! * E6 [`emu42`] — §4.2 intradomain emulation of the HE backbone.
//! * E7 [`mux7`] — mux-design ablation (sessions/memory/updates).
//! * E8 [`safety8`] — safety-filter ablation.
//! * E9 [`pktproc9`] — packet-processing backend ablation (VM vs the
//!   planned lightweight API).
//! * E10 [`scale`] — the full-scale fast path: 2014-Internet engine
//!   convergence, sequential-vs-parallel digest pinning, bytes/route.

pub mod emu42;
pub mod fig2;
pub mod mux7;
pub mod peering41;
pub mod pktproc9;
pub mod reach41;
pub mod routedist41;
pub mod safety8;
pub mod scale;
pub mod table1;

/// Render a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 3 | 4 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MiB"));
        assert!(fmt_bytes(2 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
