//! E7 — mux-design ablation: Quagga-style per-peer sessions vs the
//! BIRD/ADD-PATH multiplexing the paper proposes.
//!
//! §3: "Quagga... requires a single connection between client and server
//! for each upstream peer and thus cannot support large IXPs with many
//! peers. We plan to substitute a more streamlined solution for
//! multiplexing upstream sessions using the BIRD software router, which
//! enables lightweight multiplexing by using BGP Additional Paths."

use peering_core::{MuxDesign, MuxHarness};
use peering_netsim::Prefix;
use serde::{Deserialize, Serialize};

/// One configuration's comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MuxPoint {
    /// Upstream peer count.
    pub upstreams: usize,
    /// Client count.
    pub clients: usize,
    /// Routes announced per upstream.
    pub routes: usize,
    /// Server sessions, per-peer design.
    pub sessions_per_peer_design: usize,
    /// Server sessions, ADD-PATH design.
    pub sessions_addpath_design: usize,
    /// Server memory, per-peer design (bytes).
    pub memory_per_peer_design: usize,
    /// Server memory, ADD-PATH design (bytes).
    pub memory_addpath_design: usize,
    /// Server updates emitted, per-peer design.
    pub updates_per_peer_design: u64,
    /// Server updates emitted, ADD-PATH design.
    pub updates_addpath_design: u64,
    /// Paths each client ends with (must be equal across designs).
    pub client_paths: usize,
}

/// The sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mux7Result {
    /// Points in sweep order.
    pub points: Vec<MuxPoint>,
}

fn one(upstreams: usize, clients: usize, routes: usize, seed: u64) -> MuxPoint {
    let drive = |design: MuxDesign| {
        let mut h = MuxHarness::build(design, upstreams, clients, seed);
        for u in 0..upstreams {
            for r in 0..routes {
                let p = Prefix::v4(30 + (r >> 16) as u8, (r >> 8) as u8, r as u8, 0, 24);
                h.announce_from_upstream(u, p);
            }
        }
        let paths = h.client_paths(0, &Prefix::v4(30, 0, 0, 0, 24));
        (h.stats(), paths)
    };
    let (pp, pp_paths) = drive(MuxDesign::PerPeerSessions);
    let (ap, ap_paths) = drive(MuxDesign::AddPathMux);
    assert_eq!(
        pp_paths, ap_paths,
        "both designs must deliver identical route visibility"
    );
    MuxPoint {
        upstreams,
        clients,
        routes,
        sessions_per_peer_design: pp.server_sessions,
        sessions_addpath_design: ap.server_sessions,
        memory_per_peer_design: pp.server_memory,
        memory_addpath_design: ap.server_memory,
        updates_per_peer_design: pp.server_updates_sent,
        updates_addpath_design: ap.server_updates_sent,
        client_paths: pp_paths,
    }
}

/// Run the sweep over growing IXP sizes.
pub fn run(seed: u64) -> Mux7Result {
    let mut points = Vec::new();
    for &(u, c) in &[(5usize, 2usize), (10, 4), (20, 4), (40, 8)] {
        points.push(one(u, c, 20, seed));
    }
    Mux7Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addpath_scales_sessions_better() {
        let p = one(10, 4, 5, 1);
        assert_eq!(p.sessions_per_peer_design, 10 + 40);
        assert_eq!(p.sessions_addpath_design, 10 + 4);
        assert_eq!(p.client_paths, 10, "every upstream's path visible");
    }

    #[test]
    fn sweep_shows_growing_gap() {
        let r = run(2);
        assert_eq!(r.points.len(), 4);
        let first = &r.points[0];
        let last = &r.points[r.points.len() - 1];
        let gap_first =
            first.sessions_per_peer_design as f64 / first.sessions_addpath_design as f64;
        let gap_last = last.sessions_per_peer_design as f64 / last.sessions_addpath_design as f64;
        assert!(
            gap_last > gap_first,
            "the session gap must widen with scale: {gap_first} -> {gap_last}"
        );
        for p in &r.points {
            // Route visibility is identical; the state cost is not.
            assert!(p.client_paths == p.upstreams);
        }
    }
}
