//! E8 — safety ablation: what the filters block, and what would escape
//! without them.
//!
//! §3: "Clients cannot hijack or leak prefixes, and they cannot spoof
//! traffic in uncontrolled ways." The experiment fires a battery of
//! adversarial actions at the testbed with filters on, then computes the
//! blast radius each *would* have had (by propagating the forbidden
//! announcement on a shadow copy of reality).

use peering_core::{AnnouncementSpec, Testbed, TestbedConfig, TestbedError, Violation};
use peering_netsim::{Ipv4Net, Prefix, SimDuration};
use peering_topology::routing::{propagate, Announcement};
use serde::{Deserialize, Serialize};

/// One adversarial action and its fate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SafetyCase {
    /// What was attempted.
    pub attack: String,
    /// Was it blocked?
    pub blocked: bool,
    /// The violation reported, if blocked.
    pub violation: Option<String>,
    /// ASes the announcement would have polluted had it escaped.
    pub would_have_polluted: usize,
}

/// The battery's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Safety8Result {
    /// All cases.
    pub cases: Vec<SafetyCase>,
    /// Legitimate actions that went through (sanity control group).
    pub legitimate_allowed: usize,
    /// Legitimate actions attempted.
    pub legitimate_total: usize,
}

impl Safety8Result {
    /// Every attack blocked?
    pub fn all_blocked(&self) -> bool {
        self.cases.iter().all(|c| c.blocked)
    }
}

/// Run the battery on a small testbed.
pub fn run(seed: u64) -> Safety8Result {
    let mut tb = Testbed::build(TestbedConfig::small(seed));
    let attacker = tb
        .new_experiment("attacker", "mallory", &[0, 1])
        .expect("provision attacker");
    let victim = tb
        .new_experiment("victim", "alice", &[0])
        .expect("provision victim");
    let victim_prefix = tb.experiments[&victim].prefix;
    let own = tb.experiments[&attacker].prefix;
    let mut cases = Vec::new();

    let mut attempt = |tb: &mut Testbed, attack: &str, spec: AnnouncementSpec| {
        // Shadow blast radius: what full propagation would have done.
        let shadow = propagate(
            tb.graph(),
            &[Announcement::simple(tb.node, Prefix::V4(spec.prefix))],
        );
        let would = shadow.reach_count().saturating_sub(1);
        let outcome = tb.announce(attacker, spec);
        let (blocked, violation) = match outcome {
            Err(TestbedError::Safety(v)) => (true, Some(v.to_string())),
            Err(e) => (true, Some(e.to_string())),
            Ok(_) => (false, None),
        };
        cases.push(SafetyCase {
            attack: attack.to_string(),
            blocked,
            violation,
            would_have_polluted: would,
        });
    };

    // 1. Hijack someone else's address space.
    let foreign: Ipv4Net = "16.0.8.0/24".parse().expect("valid literal");
    attempt(
        &mut tb,
        "hijack foreign prefix",
        AnnouncementSpec::everywhere(foreign, vec![0]),
    );
    // 2. Stomp a concurrent experiment's prefix.
    attempt(
        &mut tb,
        "announce another experiment's prefix",
        AnnouncementSpec::everywhere(victim_prefix, vec![0]),
    );
    // 3. More-specific hijack of foreign space.
    let foreign_sub: Ipv4Net = "16.0.8.128/25".parse().expect("valid literal");
    attempt(
        &mut tb,
        "more-specific foreign hijack",
        AnnouncementSpec::everywhere(foreign_sub, vec![0]),
    );
    // 4. Absurd prepending (TE abuse).
    attempt(
        &mut tb,
        "excessive prepending",
        AnnouncementSpec::everywhere(own, vec![0]).prepended(50),
    );
    // 5. Mass poisoning.
    attempt(
        &mut tb,
        "excessive poisoning",
        AnnouncementSpec::everywhere(own, vec![0])
            .poisoned((1..=20).map(peering_netsim::Asn).collect()),
    );
    // 6. Control-plane flapping: rapid announce/withdraw cycles.
    let mut flap_blocked = false;
    for i in 0..12 {
        tb.advance(SimDuration::from_secs(20));
        match tb.announce(attacker, AnnouncementSpec::everywhere(own, vec![0])) {
            Ok(_) => {
                tb.advance(SimDuration::from_secs(20));
                let _ = tb.withdraw(attacker, own);
            }
            Err(TestbedError::Safety(Violation::Damped(_) | Violation::RateLimited)) => {
                flap_blocked = true;
                break;
            }
            Err(_) => {}
        }
        let _ = i;
    }
    cases.push(SafetyCase {
        attack: "rapid flapping".to_string(),
        blocked: flap_blocked,
        violation: flap_blocked.then(|| "damped or rate-limited".to_string()),
        would_have_polluted: 0,
    });
    // 7. Data-plane spoofing.
    let spoof =
        tb.safety
            .check_packet_source(attacker.0, &own, "9.9.9.9".parse().expect("valid literal"));
    cases.push(SafetyCase {
        attack: "spoofed source address".to_string(),
        blocked: !spoof.is_allowed(),
        violation: (!spoof.is_allowed()).then(|| "spoofed source".to_string()),
        would_have_polluted: 0,
    });
    // 8. Transit leak: re-exporting a foreign route.
    let leak = tb.safety.check_reexport(attacker.0, &foreign);
    cases.push(SafetyCase {
        attack: "transit leak (re-export foreign route)".to_string(),
        blocked: !leak.is_allowed(),
        violation: (!leak.is_allowed()).then(|| "route leak".to_string()),
        would_have_polluted: 0,
    });

    // Control group: legitimate behavior still works.
    let mut legitimate_allowed = 0;
    let legitimate_total = 3;
    tb.advance(SimDuration::from_secs(6 * 3600));
    if tb
        .announce(victim, AnnouncementSpec::everywhere(victim_prefix, vec![0]))
        .is_ok()
    {
        legitimate_allowed += 1;
    }
    tb.advance(SimDuration::from_secs(3600));
    if tb
        .announce(
            victim,
            AnnouncementSpec::everywhere(victim_prefix, vec![0]).prepended(3),
        )
        .is_ok()
    {
        legitimate_allowed += 1;
    }
    if tb
        .safety
        .check_packet_source(victim.0, &victim_prefix, victim_prefix.addr_at(7))
        .is_allowed()
    {
        legitimate_allowed += 1;
    }

    Safety8Result {
        cases,
        legitimate_allowed,
        legitimate_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_is_blocked() {
        let r = run(1);
        assert_eq!(r.cases.len(), 8);
        for c in &r.cases {
            assert!(c.blocked, "escaped: {}", c.attack);
        }
        assert!(r.all_blocked());
    }

    #[test]
    fn legitimate_traffic_still_flows() {
        let r = run(1);
        assert_eq!(r.legitimate_allowed, r.legitimate_total);
    }

    #[test]
    fn blocked_hijacks_had_real_blast_radius() {
        let r = run(2);
        let hijack = r
            .cases
            .iter()
            .find(|c| c.attack.contains("hijack foreign"))
            .unwrap();
        assert!(
            hijack.would_have_polluted > 50,
            "the blocked hijack would have polluted {} ASes",
            hijack.would_have_polluted
        );
    }
}
