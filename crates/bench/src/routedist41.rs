//! E5 — §4.2's peer route-count distribution.
//!
//! "For example, at AMS-IX, only our 5 largest peers give us more than
//! 10K routes, and 307 give us fewer than 100 routes." A peer exports
//! its customer cone, so the distribution is extremely heavy-tailed: a
//! handful of transit-ish peers send big tables, most peers send almost
//! nothing. We measure our AMS-IX server's per-peer Adj-RIB-In sizes and
//! report both raw thresholds and thresholds scaled to the prefix-table
//! scale factor.

use peering_core::{Testbed, TestbedConfig};
use serde::{Deserialize, Serialize};

/// The measured distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteDist41Result {
    /// Peers at the AMS-IX-like site.
    pub peers: usize,
    /// Routes-per-peer values, descending.
    pub counts_desc: Vec<usize>,
    /// The prefix-table scale factor relative to the paper's ~524k.
    pub scale: f64,
    /// Peers sending more than the scaled 10K threshold (paper: 5).
    pub over_10k_scaled: usize,
    /// Peers sending fewer than the scaled 100 threshold (paper: 307).
    pub under_100_scaled: usize,
    /// Median routes per peer.
    pub median: usize,
}

/// Run E5 on the full-scale testbed (unscaled paper numbers).
pub fn run(seed: u64) -> RouteDist41Result {
    let tb = Testbed::build(TestbedConfig::full(seed));
    measure(&tb)
}

/// Measure an already-built testbed (site 0 = the big IXP).
pub fn measure(tb: &Testbed) -> RouteDist41Result {
    let server = &tb.servers[0];
    let mut counts: Vec<usize> = server
        .peer_route_counts(tb.graph(), tb.cones())
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let scale = tb.graph().total_prefixes() as f64 / 524_000.0;
    let hi = (10_000.0 * scale).max(1.0) as usize;
    let lo = (100.0 * scale).max(1.0) as usize;
    let over = counts.iter().filter(|&&c| c > hi).count();
    let under = counts.iter().filter(|&&c| c < lo).count();
    let median = if counts.is_empty() {
        0
    } else {
        counts[counts.len() / 2]
    };
    RouteDist41Result {
        peers: counts.len(),
        over_10k_scaled: over,
        under_100_scaled: under,
        median,
        scale,
        counts_desc: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_heavy_tailed() {
        let r = run(1);
        assert!(r.peers > 500);
        // A small handful of peers send big tables (paper: 5)...
        assert!(
            (1..=15).contains(&r.over_10k_scaled),
            "over: {} of {}",
            r.over_10k_scaled,
            r.peers
        );
        // ...while the bulk send very little (paper: 307 of ~560).
        assert!(
            r.under_100_scaled > r.peers / 2,
            "under (paper: 307 of ~560): {} of {}",
            r.under_100_scaled,
            r.peers
        );
        // The biggest peer dwarfs the median.
        assert!(
            r.counts_desc[0] > r.median * 20,
            "{} vs {}",
            r.counts_desc[0],
            r.median
        );
    }

    #[test]
    fn counts_are_sorted_descending() {
        let r = run(2);
        for w in r.counts_desc.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
