//! E2 — Table 1: whether testbeds meet the §2 goals.
//!
//! Prior platforms are modeled from the paper's own scoring; PEERING's
//! row is derived from a live testbed build. The caption's claim — "no
//! two other systems can be combined to provide the set of goals PEERING
//! achieves" — is verified mechanically.

use peering_core::capability::{
    no_pair_covers_all, peering_row, testbed_matrix, Capabilities, GOALS,
};
use peering_core::{Testbed, TestbedConfig};
use serde::{Deserialize, Serialize};

/// The rendered matrix plus the verified claims.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows: `(platform, per-goal symbols)`.
    pub rows: Vec<(String, Vec<String>)>,
    /// PEERING meets every goal.
    pub peering_meets_all: bool,
    /// No pair of prior systems covers all goals.
    pub no_prior_pair_suffices: bool,
    /// Peer count the PEERING row was derived from.
    pub derived_from_peers: usize,
}

/// Build the matrix from a testbed (eval scale unless `small`).
pub fn run(seed: u64, small: bool) -> Table1Result {
    let tb = if small {
        Testbed::build(TestbedConfig::small(seed))
    } else {
        Testbed::build(TestbedConfig::eval(seed))
    };
    let features = tb.features();
    let pr: Capabilities = peering_row(&features);
    let matrix = testbed_matrix(pr);
    let rows = matrix
        .iter()
        .map(|(name, caps)| {
            (
                name.to_string(),
                caps.0.iter().map(|s| s.symbol().to_string()).collect(),
            )
        })
        .collect();
    Table1Result {
        rows,
        peering_meets_all: pr.meets_all(),
        no_prior_pair_suffices: no_pair_covers_all().is_none(),
        derived_from_peers: features.peer_count,
    }
}

/// Goal names for rendering.
pub fn goals() -> &'static [&'static str; 6] {
    &GOALS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_testbed_meets_every_goal() {
        let r = run(1, false);
        assert_eq!(r.rows.len(), 8);
        assert!(r.peering_meets_all, "peers={}", r.derived_from_peers);
        assert!(r.no_prior_pair_suffices);
        assert!(r.derived_from_peers >= 100, "rich connectivity threshold");
        let pr = r.rows.last().unwrap();
        assert_eq!(pr.0, "PR");
        assert!(pr.1.iter().all(|s| s == "Y"));
    }

    #[test]
    fn small_testbed_scores_limited_connectivity() {
        let r = run(1, true);
        assert!(!r.peering_meets_all, "a ~25-peer deployment is not rich");
        let pr = r.rows.last().unwrap();
        assert_eq!(pr.1[1], "~");
    }
}
