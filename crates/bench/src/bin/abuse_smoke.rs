//! Abuse-containment smoke check: run every seeded abuser scenario,
//! assert the abuser was contained and the bystanders untouched, and
//! write the reports as JSON.
//!
//! ```text
//! cargo run --release -p peering-bench --bin abuse_smoke -- out.json [seed]
//! ```
//!
//! The repo gate (`tools/check.sh`) runs this twice with the same seed
//! and `cmp`s the outputs: containment — state transitions, quarantine
//! instants, final Loc-RIB digests — must be byte-identical across runs.

use peering_telemetry::Telemetry;
use peering_workloads::abuse::{self, AbuseScenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args
        .next()
        .unwrap_or_else(|| "results/BENCH_abuse.json".into());
    let seed: u64 = args.next().map_or(42, |s| s.parse().expect("seed"));

    let mut lines = Vec::new();
    for scenario in AbuseScenario::all() {
        let artifacts = abuse::run_one_with_artifacts(scenario, seed, Telemetry::new());
        let r = &artifacts.report;
        assert!(
            r.contained,
            "{} seed {seed}: abuser not contained (final state {})",
            r.scenario, r.final_state
        );
        assert!(
            r.healthy_unaffected(),
            "{} seed {seed}: healthy clients diverged from baseline",
            r.scenario
        );
        let digests: Vec<String> = artifacts
            .client_digests
            .iter()
            .map(|d| format!("\"{d:#018x}\""))
            .collect();
        lines.push(format!(
            concat!(
                "  {{\"scenario\": \"{}\", \"seed\": {}, \"final_state\": \"{}\", ",
                "\"transitions\": {}, \"treat_as_withdraw\": {}, \"tail_drops\": {}, ",
                "\"client_rib_digests\": [{}]}}"
            ),
            r.scenario,
            r.seed,
            r.final_state,
            r.transitions,
            r.treat_as_withdraw,
            r.tail_drops,
            digests.join(", ")
        ));
        println!(
            "abuse smoke: {} -> {} ({} transitions, {} treat-as-withdraw, {} tail drops)",
            r.scenario, r.final_state, r.transitions, r.treat_as_withdraw, r.tail_drops
        );
    }

    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write report");
    println!("abuse smoke: 4 scenarios contained -> {out}");
}
