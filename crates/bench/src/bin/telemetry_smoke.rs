//! Telemetry smoke check: run one catalog scenario and one chaos
//! schedule with a shared telemetry registry attached, validate the
//! snapshot, and write it as JSON.
//!
//! ```text
//! cargo run --release -p peering-bench --bin telemetry_smoke -- out.json [seed]
//! ```
//!
//! The repo gate (`tools/check.sh`) runs this twice with the same seed
//! and `cmp`s the outputs: the snapshot must be byte-identical across
//! runs, which is the telemetry layer's whole determinism contract.

use peering_core::{Testbed, TestbedConfig};
use peering_telemetry::Telemetry;
use peering_workloads::abuse::{self, AbuseScenario};
use peering_workloads::chaos::{run_one_instrumented, ChaosTopology};
use peering_workloads::scenarios;

/// Counters every smoke run must produce; missing ones mean a wiring
/// regression somewhere between the scenario layer and the registry.
const EXPECTED_COUNTERS: &[&str] = &[
    "core.testbed.announces",
    "bgp.speaker.updates_in",
    "bgp.speaker.updates_out",
    "bgp.session.established",
    "bgp.decision.runs",
    "emulation.faults.applied",
    "bgp.session.treat_as_withdraw",
    "bgp.session.max_prefix_warn",
    "core.containment.state_transitions",
    "netsim.queue.tail_drops",
];

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args
        .next()
        .unwrap_or_else(|| "results/BENCH_telemetry.json".into());
    let seed: u64 = args.next().map_or(42, |s| s.parse().expect("seed"));

    // One shared registry across both substrates.
    let telemetry = Telemetry::new();

    // A catalog scenario on the testbed exercises the `core.*` mirrors.
    let mut tb = Testbed::build(TestbedConfig::small(seed));
    tb.telemetry = telemetry.clone();
    tb.monitor.set_telemetry(telemetry.clone());
    scenarios::anycast::run(&mut tb).expect("anycast scenario runs");

    // A chaos schedule exercises `bgp.*` / `emulation.*` / `netsim.*`.
    let report = run_one_instrumented(&ChaosTopology::Ring(4), seed, telemetry.clone());
    assert!(
        report.converged(),
        "chaos run must converge with telemetry attached"
    );

    // Abuse scenarios exercise the containment counters: the flood hits
    // the rate limiter and the bounded queue, the blowup trips the
    // max-prefix warning, the corrupt storm exercises RFC 7606
    // treat-as-withdraw.
    for scenario in [
        AbuseScenario::UpdateFlood,
        AbuseScenario::PrefixBlowup,
        AbuseScenario::CorruptStorm,
    ] {
        let abuse_report = abuse::run_one_instrumented(scenario, seed, telemetry.clone());
        assert!(
            abuse_report.contained,
            "abuse run {} must contain the abuser with telemetry attached",
            abuse_report.scenario
        );
    }

    let snapshot = telemetry.snapshot();
    if let Err(e) = snapshot.validate(EXPECTED_COUNTERS) {
        eprintln!("telemetry snapshot invalid: {e}");
        std::process::exit(1);
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(&out, snapshot.to_json_pretty()).expect("write snapshot");
    println!(
        "telemetry smoke: {} counters, {} gauges, {} histograms -> {out}",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len()
    );
}
