//! Collector smoke check: run one chaos schedule with a route collector
//! attached, dump every vantage's update feed and RIB table as one MRT
//! archive, and write a summary as JSON.
//!
//! ```text
//! cargo run --release -p peering-bench --bin collector_smoke -- \
//!     out.json archive.mrt [seed]
//! ```
//!
//! The repo gate (`tools/check.sh`) runs this twice with the same seed
//! and `cmp`s both outputs: the MRT archive must be byte-identical
//! across runs — the collector's whole determinism contract — and the
//! summary JSON must match too.

use peering_bgp::wire::WireConfig;
use peering_collector::{decode_all, Collector};
use peering_netsim::Asn;
use peering_telemetry::Telemetry;
use peering_workloads::chaos::{run_one_collected, ChaosTopology};
use serde::{Serialize, Value};

/// Counters every smoke run must produce; missing ones mean a wiring
/// regression between the provenance stream and the archive encoder.
const EXPECTED_COUNTERS: &[&str] = &[
    "collector.feed.records",
    "collector.feed.bytes",
    "collector.rib.entries",
    "collector.rib.bytes",
];

/// Adapter so a raw `Value` tree can go through the serializer.
struct Tree(Value);

impl Serialize for Tree {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args
        .next()
        .unwrap_or_else(|| "results/BENCH_collector.json".into());
    let archive_out = args
        .next()
        .unwrap_or_else(|| "results/collector.mrt".into());
    let seed: u64 = args.next().map_or(42, |s| s.parse().expect("seed"));

    let topology = ChaosTopology::Ring(4);
    let telemetry = Telemetry::new();
    let mut collector = Collector::new().with_telemetry(telemetry.clone());
    for i in 0..topology.node_count() {
        collector.add_vantage(Asn(65001 + i as u32));
    }

    // A faulted run with every AS as a vantage: the archive captures the
    // whole propagation history, faults and heals included.
    let report = run_one_collected(&topology, seed, &mut collector);
    assert!(
        report.converged(),
        "chaos run must converge with a collector attached"
    );

    // A second, fault-free build gives the converged tables the RIB dump
    // snapshots; the same collector keeps archiving so the feed covers
    // both runs.
    let emu = topology.build_collected(seed, &mut collector);

    let cfg = WireConfig::default();
    let mut archive = Vec::new();
    let mut feed_records = 0usize;
    for vantage in collector.vantages().collect::<Vec<_>>() {
        let feed = collector.update_archive(vantage, cfg).expect("feed");
        feed_records += decode_all(&feed).expect("well-formed feed").len();
        archive.extend(feed);
        archive.extend(collector.rib_dump(&emu, vantage, cfg).expect("rib dump"));
    }

    let snapshot = telemetry.snapshot();
    if let Err(e) = snapshot.validate(EXPECTED_COUNTERS) {
        eprintln!("collector telemetry snapshot invalid: {e}");
        std::process::exit(1);
    }

    let summary = Value::Map(vec![
        ("scenario".into(), Value::Str(report.scenario.clone())),
        ("seed".into(), Value::U64(seed)),
        ("faults".into(), Value::U64(report.faults as u64)),
        (
            "baseline_digest".into(),
            Value::Str(format!("{:#018x}", report.baseline_digest)),
        ),
        (
            "chaos_digest".into(),
            Value::Str(format!("{:#018x}", report.chaos_digest)),
        ),
        (
            "vantages".into(),
            Value::U64(collector.vantages().count() as u64),
        ),
        ("feed_records".into(), Value::U64(feed_records as u64)),
        ("archive_bytes".into(), Value::U64(archive.len() as u64)),
        (
            "counters".into(),
            Value::Map(
                EXPECTED_COUNTERS
                    .iter()
                    .map(|name| ((*name).into(), Value::U64(snapshot.counter(name))))
                    .collect(),
            ),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&Tree(summary)).expect("serialize") + "\n";

    for path in [&out, &archive_out] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output dir");
            }
        }
    }
    std::fs::write(&archive_out, &archive).expect("write archive");
    std::fs::write(&out, rendered).expect("write summary");
    println!(
        "collector smoke: {} vantages, {} feed records, {} archive bytes -> {out} + {archive_out}",
        collector.vantages().count(),
        feed_records,
        archive.len()
    );
}
