//! Regenerate every table and figure from the paper's evaluation.
//!
//! ```text
//! cargo run --release -p peering-bench --bin repro -- all
//! cargo run --release -p peering-bench --bin repro -- fig2 --full
//! ```
//!
//! Experiments: `fig2`, `table1`, `peering_41`, `reach_41`,
//! `routedist_41`, `emu_42`, `mux_ablation`, `safety_ablation`,
//! `pktproc_ablation`, `all`. E3–E5 run on the full-scale (47k-AS)
//! Internet so their absolutes compare directly with the paper's.
//! Options: `--full` (Internet-scale Figure 2 point), `--seed N`,
//! `--json DIR` (write raw results as JSON).

use peering_bench::*;
use std::fmt::Write as _;

struct Opts {
    full: bool,
    seed: u64,
    json_dir: Option<String>,
}

fn save_json<T: serde::Serialize>(opts: &Opts, name: &str, value: &T) {
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let data = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, data).expect("write json");
        println!("  (raw data -> {path})");
    }
}

fn run_fig2(opts: &Opts) {
    println!("\n## E1 — Figure 2: BGP table memory vs prefixes x peers\n");
    println!("Paper: Quagga BGP table memory grows linearly in prefixes, with");
    println!("per-peer table overhead; Internet-scale tables (500K) are large but");
    println!("tolerable because peers rarely send full tables.\n");
    let result = if opts.full {
        fig2::full()
    } else {
        fig2::quick()
    };
    let mut rows = Vec::new();
    for p in &result.points {
        rows.push(vec![
            p.peers.to_string(),
            p.routes.to_string(),
            fmt_bytes(p.bytes_interned),
            fmt_bytes(p.bytes_uninterned),
            p.distinct_attrs.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "peers",
                "routes/peer",
                "memory (shared attrs)",
                "memory (naive)",
                "distinct attrs"
            ],
            &rows
        )
    );
    save_json(opts, "fig2", &result);
}

fn run_table1(opts: &Opts) {
    println!("\n## E2 — Table 1: testbed capability matrix\n");
    let result = table1::run(opts.seed, false);
    let mut header: Vec<&str> = vec!["goal"];
    let names: Vec<String> = result.rows.iter().map(|(n, _)| n.clone()).collect();
    for n in &names {
        header.push(n);
    }
    let mut rows = Vec::new();
    for (gi, goal) in table1::goals().iter().enumerate() {
        let mut row = vec![goal.to_string()];
        for (_, syms) in &result.rows {
            row.push(syms[gi].clone());
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&header, &rows));
    println!(
        "PEERING meets all goals: {} (derived from {} live peers)",
        result.peering_meets_all, result.derived_from_peers
    );
    println!(
        "No pair of prior systems covers all goals: {}",
        result.no_prior_pair_suffices
    );
    save_json(opts, "table1", &result);
}

fn run_peering41(opts: &Opts) {
    println!("\n## E3 — §4.1 peering at AMS-IX\n");
    let r = peering41::run(opts.seed);
    let rows = vec![
        vec!["AMS-IX members".into(), r.members.to_string(), "669".into()],
        vec![
            "on route servers".into(),
            r.rs_members.to_string(),
            "554".into(),
        ],
        vec![
            "open policy (non-RS)".into(),
            r.open.to_string(),
            "48".into(),
        ],
        vec!["closed policy".into(), r.closed.to_string(), "12".into()],
        vec![
            "case-by-case".into(),
            r.case_by_case.to_string(),
            "40".into(),
        ],
        vec!["unlisted".into(), r.unlisted.to_string(), "15".into()],
        vec![
            "bilateral requests sent".into(),
            r.requests_sent.to_string(),
            "a few dozen".into(),
        ],
        vec![
            "accepted".into(),
            (r.accepted + r.accepted_after_questions).to_string(),
            "vast majority".into(),
        ],
        vec![
            "asked questions first".into(),
            r.accepted_after_questions.to_string(),
            "1".into(),
        ],
        vec![
            "no response".into(),
            r.no_response.to_string(),
            "a handful".into(),
        ],
        vec![
            "total distinct peers".into(),
            r.total_peers.to_string(),
            "hundreds".into(),
        ],
        vec![
            "peer countries".into(),
            r.peer_countries.to_string(),
            "59".into(),
        ],
        vec![
            "top-50 cone ASes peered".into(),
            r.top50.to_string(),
            ">=13".into(),
        ],
        vec![
            "top-100 cone ASes peered".into(),
            r.top100.to_string(),
            "27".into(),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["metric", "measured", "paper"], &rows)
    );
    save_json(opts, "peering_41", &r);
}

fn run_reach41(opts: &Opts) {
    println!("\n## E4 — §4.1 reachability via peering\n");
    let r = reach41::run(opts.seed);
    let rows = vec![
        vec![
            "prefixes via peer routes".into(),
            format!(
                "{} / {} ({:.1}%)",
                r.peer_prefixes,
                r.total_prefixes,
                100.0 * r.fraction
            ),
            "131,000 / ~524,000 (25%)".into(),
        ],
        vec![
            "Alexa sites covered".into(),
            format!("{} / {}", r.sites_covered, r.sites),
            "157 / 500".into(),
        ],
        vec![
            "embedded resources".into(),
            r.resources.to_string(),
            "49,776".into(),
        ],
        vec![
            "distinct FQDNs".into(),
            r.distinct_fqdns.to_string(),
            "4,182".into(),
        ],
        vec![
            "distinct IPs".into(),
            r.distinct_ips.to_string(),
            "2,757".into(),
        ],
        vec![
            "IPs with peer routes".into(),
            format!(
                "{} / {} ({:.1}%)",
                r.ips_covered,
                r.distinct_ips,
                100.0 * r.ips_covered as f64 / r.distinct_ips as f64
            ),
            "1,055 / 2,757 (38%)".into(),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["metric", "measured", "paper"], &rows)
    );
    save_json(opts, "reach_41", &r);
}

fn run_routedist41(opts: &Opts) {
    println!("\n## E5 — §4.2 routes-per-peer distribution at AMS-IX\n");
    let r = routedist41::run(opts.seed);
    let rows = vec![
        vec!["peers measured".into(), r.peers.to_string(), "~560".into()],
        vec![
            format!("peers sending > 10K routes (scaled x{:.2})", r.scale),
            r.over_10k_scaled.to_string(),
            "5".into(),
        ],
        vec![
            format!("peers sending < 100 routes (scaled x{:.2})", r.scale),
            r.under_100_scaled.to_string(),
            "307".into(),
        ],
        vec![
            "median routes/peer".into(),
            r.median.to_string(),
            "(small)".into(),
        ],
        vec![
            "largest peer's routes".into(),
            r.counts_desc[0].to_string(),
            "(>10K)".into(),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["metric", "measured", "paper"], &rows)
    );
    // A terse histogram for the tail shape.
    let mut hist = String::new();
    for (lo, hi) in [
        (0usize, 10usize),
        (10, 100),
        (100, 1000),
        (1000, usize::MAX),
    ] {
        let n = r
            .counts_desc
            .iter()
            .filter(|&&c| c >= lo && (hi == usize::MAX || c < hi))
            .count();
        let label = if hi == usize::MAX {
            format!(">={lo}")
        } else {
            format!("{lo}..{hi}")
        };
        let _ = writeln!(hist, "  routes {label:>10}: {n} peers");
    }
    println!("{hist}");
    save_json(opts, "routedist_41", &r);
}

fn run_emu42(opts: &Opts) {
    println!("\n## E6 — §4.2 intradomain emulation: Hurricane Electric backbone\n");
    let r = emu42::run(opts.seed, 500);
    let rows = vec![
        vec!["PoPs emulated".into(), r.pops.to_string(), "24".into()],
        vec![
            "PoP-pair reachability".into(),
            format!("{:.0}%", 100.0 * r.reachability),
            "full".into(),
        ],
        vec![
            "AMS-IX routes propagated to farthest PoP".into(),
            format!(
                "{} / {}",
                r.external_routes_at_farthest_pop, r.external_routes_in
            ),
            "all".into(),
        ],
        vec![
            "PoP prefixes exported to AMS-IX".into(),
            format!("{} / 24", r.pop_routes_exported),
            "all".into(),
        ],
        vec![
            "emulation memory".into(),
            fmt_bytes(r.memory_bytes),
            "< 8 GB".into(),
        ],
        vec![
            "hosts needed at 8 GB".into(),
            r.hosts_at_8gb.to_string(),
            "1 (commodity desktop)".into(),
        ],
        vec![
            "messages to convergence".into(),
            r.convergence_steps.to_string(),
            "-".into(),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["metric", "measured", "paper"], &rows)
    );
    save_json(opts, "emu_42", &r);
}

fn run_mux(opts: &Opts) {
    println!("\n## E7 — mux ablation: per-peer sessions (Quagga) vs ADD-PATH (BIRD)\n");
    let r = mux7::run(opts.seed);
    let mut rows = Vec::new();
    for p in &r.points {
        rows.push(vec![
            format!("{}x{}", p.upstreams, p.clients),
            p.sessions_per_peer_design.to_string(),
            p.sessions_addpath_design.to_string(),
            fmt_bytes(p.memory_per_peer_design),
            fmt_bytes(p.memory_addpath_design),
            p.updates_per_peer_design.to_string(),
            p.updates_addpath_design.to_string(),
            p.client_paths.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "peers x clients",
                "sessions (per-peer)",
                "sessions (ADD-PATH)",
                "server mem (per-peer)",
                "server mem (ADD-PATH)",
                "updates (per-peer)",
                "updates (ADD-PATH)",
                "paths/client"
            ],
            &rows
        )
    );
    save_json(opts, "mux_ablation", &r);
}

fn run_safety(opts: &Opts) {
    println!("\n## E8 — safety ablation: the filter battery\n");
    let r = safety8::run(opts.seed);
    let mut rows = Vec::new();
    for c in &r.cases {
        rows.push(vec![
            c.attack.clone(),
            if c.blocked {
                "BLOCKED".into()
            } else {
                "ESCAPED".into()
            },
            c.violation.clone().unwrap_or_default(),
            if c.would_have_polluted > 0 {
                format!("{} ASes", c.would_have_polluted)
            } else {
                "-".into()
            },
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "attack",
                "verdict",
                "violation",
                "blast radius if unfiltered"
            ],
            &rows
        )
    );
    println!(
        "all attacks blocked: {} | legitimate actions allowed: {}/{}",
        r.all_blocked(),
        r.legitimate_allowed,
        r.legitimate_total
    );
    save_json(opts, "safety_ablation", &r);
}

fn run_pktproc(opts: &Opts) {
    println!("\n## E9 — packet processing: per-client VM vs lightweight API\n");
    let r = pktproc9::run(50_000);
    let rows = vec![
        vec![
            "VM backend".into(),
            r.vm.delivered.to_string(),
            format!("{} us", r.vm.busy_us),
            r.vm.services_per_core.to_string(),
        ],
        vec![
            "lightweight API".into(),
            r.lightweight.delivered.to_string(),
            format!("{} us", r.lightweight.busy_us),
            r.lightweight.services_per_core.to_string(),
        ],
    ];
    println!(
        "{}",
        markdown_table(
            &[
                "backend",
                "packets delivered",
                "processing time",
                "10k-pps services per core"
            ],
            &rows
        )
    );
    println!(
        "identical semantics, {:.0}x less processing — \"this would free up\n\
         processing power and allow execution of more services at the server\"",
        r.speedup()
    );
    save_json(opts, "pktproc_ablation", &r);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut opts = Opts {
        full: false,
        seed: 1,
        json_dir: None,
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--seed" => {
                opts.seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N");
            }
            "--json" => {
                opts.json_dir = Some(it.next().expect("--json DIR").clone());
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    println!(
        "# PEERING reproduction — evaluation outputs (seed {})",
        opts.seed
    );
    for w in &which {
        match w.as_str() {
            "fig2" => run_fig2(&opts),
            "table1" => run_table1(&opts),
            "peering_41" => run_peering41(&opts),
            "reach_41" => run_reach41(&opts),
            "routedist_41" => run_routedist41(&opts),
            "emu_42" => run_emu42(&opts),
            "mux_ablation" => run_mux(&opts),
            "safety_ablation" => run_safety(&opts),
            "pktproc_ablation" => run_pktproc(&opts),
            "all" => {
                run_fig2(&opts);
                run_table1(&opts);
                run_peering41(&opts);
                run_reach41(&opts);
                run_routedist41(&opts);
                run_emu42(&opts);
                run_mux(&opts);
                run_safety(&opts);
                run_pktproc(&opts);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                eprintln!("known: fig2 table1 peering_41 reach_41 routedist_41 emu_42 mux_ablation safety_ablation pktproc_ablation all");
                std::process::exit(2);
            }
        }
    }
}
