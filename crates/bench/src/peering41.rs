//! E3 — §4.1 "Rich interdomain peering": the AMS-IX deployment numbers.
//!
//! Paper values: 669 members; 554 on the route servers; of the 115
//! others 48 open / 12 closed / 40 case-by-case / 15 unlisted; requests
//! sent to non-RS members were overwhelmingly accepted (one asked
//! questions, a handful never replied); peers in 59 countries; peering
//! with ≥13 of the top-50 and 27 of the top-100 ASes by customer cone.

use peering_core::{Testbed, TestbedConfig};
use serde::{Deserialize, Serialize};

/// Measured §4.1 counters, paper values alongside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Peering41Result {
    /// AMS-IX total members (paper: 669).
    pub members: usize,
    /// Members on the route server (paper: 554).
    pub rs_members: usize,
    /// Policy mix of the rest (paper: 48/12/40/15).
    pub open: usize,
    /// Closed members.
    pub closed: usize,
    /// Case-by-case members.
    pub case_by_case: usize,
    /// Unlisted members.
    pub unlisted: usize,
    /// Bilateral requests sent.
    pub requests_sent: usize,
    /// Accepted outright.
    pub accepted: usize,
    /// Accepted after questions (paper: one AS asked questions).
    pub accepted_after_questions: usize,
    /// Never replied (paper: "a handful").
    pub no_response: usize,
    /// Declined.
    pub declined: usize,
    /// Total distinct peers across the testbed.
    pub total_peers: usize,
    /// Countries our peers span (paper: 59).
    pub peer_countries: usize,
    /// Of the top 50 ASes by cone, how many we peer with (paper: ≥13).
    pub top50: usize,
    /// Of the top 100 (paper: 27).
    pub top100: usize,
}

/// Run E3 on the full-scale testbed (unscaled paper numbers).
pub fn run(seed: u64) -> Peering41Result {
    let tb = Testbed::build(TestbedConfig::full(seed));
    measure(&tb)
}

/// Measure an already-built testbed (site 0 must be AMS-IX-like).
pub fn measure(tb: &Testbed) -> Peering41Result {
    let ixp = &tb.ixps[0];
    let census = ixp.directory.policy_census();
    let wf = tb.workflows.get(&0).expect("IXP site 0 has a workflow");
    let tally = wf.tally(tb.now());
    Peering41Result {
        members: ixp.directory.len(),
        rs_members: census.route_server,
        open: census.open,
        closed: census.closed,
        case_by_case: census.case_by_case,
        unlisted: census.unlisted,
        requests_sent: wf.sent(),
        accepted: tally.accepted,
        accepted_after_questions: tally.accepted_after_questions,
        no_response: tally.no_response,
        declined: tally.declined,
        total_peers: tb.all_peers().len(),
        peer_countries: tb.peer_countries().len(),
        top50: tb.top_cone_coverage(50),
        top100: tb.top_cone_coverage(100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ams_ix_counts_match_the_paper() {
        let r = run(1);
        assert_eq!(r.members, 669);
        assert_eq!(r.rs_members, 554);
        assert_eq!(r.open, 48);
        assert_eq!(r.closed, 12);
        assert_eq!(r.case_by_case, 40);
        assert_eq!(r.unlisted, 15);
        assert_eq!(r.requests_sent, 115);
    }

    #[test]
    fn workflow_outcomes_match_the_papers_story() {
        let r = run(1);
        // Open members nearly all accept; closed decline; so acceptance
        // lands near the open count but above it (case-by-case helps).
        assert!(r.accepted + r.accepted_after_questions >= 45, "{r:?}");
        assert!(r.no_response >= 3, "a handful never reply: {r:?}");
        assert!(r.accepted_after_questions <= 10);
        assert!(r.declined >= r.closed / 2);
    }

    #[test]
    fn connectivity_is_rich_and_global() {
        let r = run(1);
        assert!(r.total_peers > 500, "hundreds of peers: {}", r.total_peers);
        assert!(
            (45..=64).contains(&r.peer_countries),
            "peers span many countries (paper: 59): {}",
            r.peer_countries
        );
        // Paper: >=13 of the top-50, 27 of the top-100. A sizable
        // minority of the biggest ASes must be peers, but nowhere near
        // all of them.
        assert!((4..=25).contains(&r.top50), "top-50 coverage {}", r.top50);
        assert!(r.top100 >= r.top50);
        assert!(
            (8..=50).contains(&r.top100),
            "top-100 coverage {}",
            r.top100
        );
    }
}
