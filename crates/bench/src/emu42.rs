//! E6 — §4.2 "Scalable intradomain emulation": the Hurricane Electric
//! backbone.
//!
//! Paper setup: "We emulated the PoP-level global backbone of Hurricane
//! Electric (HE), using data from Topology Zoo. We set up a Quagga
//! routing engine for each of the 24 PoPs, configured each PoP to
//! originate a prefix, and configured sessions between adjacent PoPs. We
//! then connected the emulated Amsterdam PoP to peer at AMS-IX via
//! PEERING... Routes from AMS-IX propagated through the emulated HE
//! topology, and MinineXt forwarded routes from emulated PoPs out...
//! The emulation ran on a commodity desktop using 8GB RAM."

use peering_bgp::{Asn, BgpMessage, Output, PeerConfig, PeerId, Prefix, Speaker, SpeakerConfig};
use peering_emulation::{build_from_pops, place_containers};
use peering_topology::hurricane_electric;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Measured results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Emu42Result {
    /// PoPs emulated (paper: 24).
    pub pops: usize,
    /// Message deliveries to full convergence.
    pub convergence_steps: usize,
    /// Fraction of PoP pairs with reachability (must be 1.0).
    pub reachability: f64,
    /// Emulation memory estimate in bytes (paper bound: 8 GB).
    pub memory_bytes: usize,
    /// Routes injected from the simulated AMS-IX side.
    pub external_routes_in: usize,
    /// How many of them every PoP learned.
    pub external_routes_at_farthest_pop: usize,
    /// PoP prefixes the external side learned back (paper: "MinineXt
    /// forwarded routes from emulated PoPs out to the Internet").
    pub pop_routes_exported: usize,
    /// Hosts needed at an 8 GB budget.
    pub hosts_at_8gb: usize,
}

/// Run the emulation end to end, bridging Amsterdam to a simulated
/// AMS-IX upstream that injects `external_routes` prefixes.
pub fn run(seed: u64, external_routes: usize) -> Emu42Result {
    let topo = hurricane_electric();
    let pops = topo.pops.len();
    let ams = topo.pop_by_city("Amsterdam").expect("Amsterdam PoP");
    let mut pe = build_from_pops(&topo, 64600, seed);

    // The external AMS-IX-side speaker (the PEERING mux seen from HE).
    let h = pe.external_at(ams, Asn::PEERING);
    let mut ext = Speaker::new(
        SpeakerConfig::new(Asn::PEERING, Ipv4Addr::new(80, 249, 208, 1)).route_server(),
    );
    ext.add_peer(PeerConfig::new(PeerId(0), pe.asns[ams]).passive());
    ext.start_peer(PeerId(0), peering_netsim::SimTime::ZERO);

    let convergence_steps = pe.converge(10_000_000);

    // Bridge the external session until quiescent.
    let bridge = |pe: &mut peering_emulation::PopEmulation, ext: &mut Speaker| {
        for _ in 0..64 {
            let outbound = pe.emu.drain_external(h);
            if outbound.is_empty() {
                break;
            }
            let mut replies: Vec<BgpMessage> = Vec::new();
            let now = pe.emu.now();
            for m in outbound {
                for o in ext.on_message(PeerId(0), m, now) {
                    if let Output::Send(_, msg) = o {
                        replies.push(msg);
                    }
                }
            }
            for m in replies {
                pe.emu.inject_external(h, m);
            }
            pe.emu.run_until_quiet(10_000_000);
        }
    };
    bridge(&mut pe, &mut ext);
    assert!(ext.peer_established(PeerId(0)), "external session up");

    // Inject AMS-IX routes inward.
    let now = pe.emu.now();
    for i in 0..external_routes {
        let p = Prefix::v4(60 + (i >> 16) as u8, (i >> 8) as u8, i as u8, 0, 24);
        let outs = ext.originate(p, now);
        for o in outs {
            if let Output::Send(_, msg) = o {
                pe.emu.inject_external(h, msg);
            }
        }
    }
    pe.emu.run_until_quiet(10_000_000);
    bridge(&mut pe, &mut ext);

    // Count external routes at the PoP farthest from Amsterdam.
    let far = pe
        .spf
        .from(ams)
        .dist
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| if d == u32::MAX { 0 } else { d })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let far_daemon = pe.emu.daemon(pe.routers[far]).expect("daemon");
    let external_at_far = (0..external_routes)
        .filter(|&i| {
            let p = Prefix::v4(60 + (i >> 16) as u8, (i >> 8) as u8, i as u8, 0, 24);
            far_daemon.loc_rib().get(&p).is_some()
        })
        .count();

    // Routes from emulated PoPs visible on the external side.
    let pop_routes_exported = pe
        .prefixes
        .iter()
        .filter(|p| ext.loc_rib().get(p).is_some())
        .count();

    let memory_bytes = pe.emu.total_memory();
    let demands: Vec<usize> = pe
        .emu
        .memory_by_container()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let hosts_at_8gb = place_containers(&demands, 8 * 1024 * 1024 * 1024)
        .map(|p| p.hosts)
        .unwrap_or(usize::MAX);

    Emu42Result {
        pops,
        convergence_steps,
        reachability: pe.reachability(),
        memory_bytes,
        external_routes_in: external_routes,
        external_routes_at_farthest_pop: external_at_far,
        pop_routes_exported,
        hosts_at_8gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_backbone_reproduces_the_papers_claims() {
        let r = run(1, 200);
        assert_eq!(r.pops, 24);
        assert_eq!(r.reachability, 1.0, "all PoP pairs reachable");
        // Routes from "AMS-IX" propagate through the entire backbone...
        assert_eq!(
            r.external_routes_at_farthest_pop, r.external_routes_in,
            "external routes must reach the farthest PoP"
        );
        // ...and PoP prefixes flow out to the exchange.
        assert_eq!(r.pop_routes_exported, 24);
        // The whole thing fits on one 8 GB desktop.
        assert_eq!(r.hosts_at_8gb, 1, "memory {}", r.memory_bytes);
        assert!(r.memory_bytes < 8 * 1024 * 1024 * 1024);
        assert!(r.convergence_steps > 0);
    }
}
