//! E10 — the full-scale fast path: engine throughput, convergence, and
//! bytes/route at 2014 Internet scale (~47k ASes, ~524k prefixes).
//!
//! Everything in this module is deterministic — topology construction,
//! engine runs, digests, and memory accounting are pure functions of
//! `(preset, seed)`. Wall-clock numbers (events/sec, milliseconds to
//! convergence) live in the `scale_bench` *example*, outside the
//! determinism contract that `peering-analyze` enforces on `src/`;
//! `tools/check.sh` strips those `timing_*` keys before comparing
//! double runs byte-for-byte.

use peering_netsim::{EngineRun, SimTime};
use peering_topology::{Internet, InternetConfig};
use peering_workloads::{spaced_checkpoints, ScaleTopo};
use serde::Serialize;

/// Sim-time horizon checkpoint digests are spread across. Engine runs
/// quiesce far earlier; later checkpoints pin the converged table.
const CHECKPOINT_HORIZON: SimTime = SimTime::from_secs(120);
/// Checkpoints per run.
const CHECKPOINT_COUNT: usize = 4;

/// Resolve a preset name to generator parameters.
///
/// `full` is the paper's 2014 Internet (~47k ASes, ~524k prefixes);
/// `eval` is the 1:8-scaled evaluation topology; `small` is the unit
/// test Internet.
pub fn preset(name: &str, seed: u64) -> InternetConfig {
    match name {
        "full" => InternetConfig::full(seed),
        "eval" => InternetConfig::eval(seed),
        "small" => InternetConfig::small(seed),
        other => panic!("unknown scale preset {other:?} (full|eval|small)"),
    }
}

/// The standard checkpoint schedule for scale runs.
pub fn standard_checkpoints() -> Vec<SimTime> {
    spaced_checkpoints(CHECKPOINT_HORIZON, CHECKPOINT_COUNT)
}

/// One engine run, summarized for the report.
#[derive(Debug, Clone, Serialize)]
pub struct EngineSummary {
    /// Events processed to quiescence.
    pub events: u64,
    /// Sim-time of the last processed event (µs).
    pub sim_end_us: u64,
    /// `(checkpoint µs, Loc-RIB digest)` pairs, digest as fixed-width hex.
    pub checkpoints: Vec<(u64, String)>,
    /// Digest of every Loc-RIB at quiescence.
    pub final_digest: String,
}

impl EngineSummary {
    /// Summarize an [`EngineRun`].
    pub fn from_run(run: &EngineRun) -> EngineSummary {
        EngineSummary {
            events: run.events,
            sim_end_us: run.end_time.as_micros(),
            checkpoints: run
                .checkpoints
                .iter()
                .map(|(t, d)| (t.as_micros(), format!("{d:016x}")))
                .collect(),
            final_digest: format!("{:016x}", run.final_digest),
        }
    }
}

/// Fig. 2-style marginal table cost at a given scale, derived from
/// [`crate::fig2::measure`] (shared-attribute interning vs the naive
/// ablation).
#[derive(Debug, Clone, Serialize)]
pub struct BytesPerRoute {
    /// Peer sessions feeding the measured router.
    pub peers: usize,
    /// Routes per peer (the preset's global table size).
    pub routes: usize,
    /// Total table bytes with attribute interning.
    pub bytes_interned: usize,
    /// Total table bytes with interning disabled.
    pub bytes_uninterned: usize,
    /// Distinct attribute sets the interner ended up holding.
    pub distinct_attrs: usize,
    /// Interned bytes per stored Adj-RIB route.
    pub per_route_interned: f64,
    /// Uninterned bytes per stored Adj-RIB route.
    pub per_route_uninterned: f64,
}

/// Measure bytes/route at `(peers, routes)` scale.
pub fn bytes_per_route(peers: usize, routes: usize) -> BytesPerRoute {
    let p = crate::fig2::measure(peers, routes);
    let stored = (peers * routes) as f64;
    BytesPerRoute {
        peers,
        routes,
        bytes_interned: p.bytes_interned,
        bytes_uninterned: p.bytes_uninterned,
        distinct_attrs: p.distinct_attrs,
        per_route_interned: p.bytes_interned as f64 / stored,
        per_route_uninterned: p.bytes_uninterned as f64 / stored,
    }
}

/// The deterministic part of `results/BENCH_scale.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleReport {
    /// Preset name (`full`, `eval`, `small`).
    pub preset: String,
    /// Generator seed.
    pub seed: u64,
    /// AS count in the generated graph.
    pub ases: usize,
    /// BGP sessions wired into the engine.
    pub sessions: usize,
    /// Global prefix-table size of the preset.
    pub table_prefixes: usize,
    /// Beacon prefixes propagated through the engine.
    pub beacons: usize,
    /// Shard counts the parallel engine ran with.
    pub shard_counts: Vec<usize>,
    /// True when every parallel run equalled the sequential run,
    /// checkpoint digests included, bitwise.
    pub parallel_matches_sequential: bool,
    /// The sequential reference run.
    pub sequential: EngineSummary,
    /// Fig. 2-style table cost at this preset's table size.
    pub bytes_per_route: BytesPerRoute,
}

/// Build the engine topology for a generated Internet.
pub fn build_topo(net: &Internet, beacons: usize) -> ScaleTopo {
    ScaleTopo::from_internet(net, beacons)
}

/// Assemble the deterministic report from measured parts.
#[allow(clippy::too_many_arguments)]
pub fn report(
    preset_name: &str,
    seed: u64,
    net: &Internet,
    topo: &ScaleTopo,
    shard_counts: &[usize],
    all_match: bool,
    sequential: &EngineRun,
    bytes: BytesPerRoute,
) -> ScaleReport {
    ScaleReport {
        preset: preset_name.to_string(),
        seed,
        ases: net.graph.len(),
        sessions: topo.session_count(),
        table_prefixes: net.graph.total_prefixes(),
        beacons: topo.beacon_count(),
        shard_counts: shard_counts.to_vec(),
        parallel_matches_sequential: all_match,
        sequential: EngineSummary::from_run(sequential),
        bytes_per_route: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_preset_report_is_consistent() {
        let net = Internet::build(preset("small", 9));
        let topo = build_topo(&net, 4);
        let cks = standard_checkpoints();
        let seq = topo.run_engine_sequential(&cks, SimTime::MAX);
        let par = topo.run_engine_parallel(2, &cks, SimTime::MAX);
        let bytes = bytes_per_route(2, 500);
        let rep = report("small", 9, &net, &topo, &[2], par == seq, &seq, bytes);
        assert!(rep.parallel_matches_sequential);
        assert_eq!(rep.sequential.checkpoints.len(), CHECKPOINT_COUNT);
        assert!(rep.sessions > 0 && rep.beacons > 0);
        assert!(rep.bytes_per_route.per_route_interned > 0.0);
        assert!(rep.bytes_per_route.per_route_uninterned >= rep.bytes_per_route.per_route_interned);
    }

    #[test]
    fn unknown_preset_panics() {
        assert!(std::panic::catch_unwind(|| preset("medium", 1)).is_err());
    }
}
