//! E9 — packet-processing ablation: per-client VMs vs the lightweight
//! datapath.
//!
//! §3: "The virtual machines allow flexibility but incur high overhead.
//! Going forward, we plan to expose a lightweight packet processing API
//! ... at lower overhead. This would free up processing power and allow
//! execution of more services at the server." The experiment runs an
//! identical service pipeline (DPI tag match + rewrite + rate limit) on
//! both backends over the same traffic and reports the processing budget
//! each consumes — and therefore how many concurrent services one server
//! core could host.

use peering_core::{Backend, PacketProcessor, PktAction, PktMatch, PktVerdict};
use peering_netsim::{IpPacket, Payload, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One backend's measurements.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackendRun {
    /// Which backend.
    pub backend: Backend,
    /// Packets pushed through.
    pub packets: u64,
    /// Packets delivered (identical across backends).
    pub delivered: u64,
    /// Total simulated processing time consumed.
    pub busy_us: u64,
    /// Services one fully-busy core could host at this packet rate
    /// (1 second of traffic / busy time).
    pub services_per_core: u64,
}

/// The ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PktProc9Result {
    /// VM backend numbers.
    pub vm: BackendRun,
    /// Lightweight backend numbers.
    pub lightweight: BackendRun,
}

impl PktProc9Result {
    /// The headline: the overhead ratio between the two designs.
    pub fn speedup(&self) -> f64 {
        self.vm.busy_us as f64 / self.lightweight.busy_us.max(1) as f64
    }
}

fn service_pipeline(backend: Backend) -> PacketProcessor {
    PacketProcessor::new(backend)
        .rule(
            PktMatch::PayloadPrefix(b"DECOY".to_vec()),
            vec![
                PktAction::Count,
                PktAction::RewriteDst("198.51.100.9".parse().expect("addr")),
                PktAction::Pass,
            ],
        )
        .rule(PktMatch::UdpDport(0), vec![PktAction::Drop])
        .rule(
            PktMatch::Any,
            vec![
                PktAction::RateLimit {
                    bytes_per_sec: 10_000_000,
                    burst: 1_000_000,
                },
                PktAction::Pass,
            ],
        )
}

fn drive(backend: Backend, packets: u64) -> BackendRun {
    let mut pp = service_pipeline(backend);
    let mut delivered = 0;
    for i in 0..packets {
        let data = if i % 10 == 0 {
            b"DECOY-tagged".to_vec()
        } else {
            vec![0u8; 64]
        };
        let pkt = IpPacket::new(
            "184.164.224.10".parse().expect("addr"),
            "203.0.113.80".parse().expect("addr"),
            Payload::Udp {
                sport: 40000,
                dport: 443,
                data,
            },
        );
        let t = SimTime::ZERO + SimDuration::from_micros(i * 100); // 10k pps
        if matches!(pp.process(pkt, t), PktVerdict::Deliver(_)) {
            delivered += 1;
        }
    }
    let busy_us = pp.busy.as_micros();
    // One second of this traffic costs `busy/packets*10_000` us of core.
    let per_second = pp.busy.as_micros() as f64 * (10_000.0 / packets as f64);
    BackendRun {
        backend,
        packets,
        delivered,
        busy_us,
        services_per_core: (1_000_000.0 / per_second.max(1.0)) as u64,
    }
}

/// Run the ablation over `packets` packets per backend.
pub fn run(packets: u64) -> PktProc9Result {
    PktProc9Result {
        vm: drive(Backend::Vm, packets),
        lightweight: drive(Backend::Lightweight, packets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightweight_frees_processing_power() {
        let r = run(10_000);
        // Identical semantics...
        assert_eq!(r.vm.delivered, r.lightweight.delivered);
        assert!(r.vm.delivered > 9_000);
        // ...very different cost: the paper's motivation quantified.
        assert!(r.speedup() > 20.0, "speedup {}", r.speedup());
        assert!(r.lightweight.services_per_core > r.vm.services_per_core * 20);
        // A VM can't host many 10k-pps services per core.
        assert!(r.vm.services_per_core < 10, "{}", r.vm.services_per_core);
    }
}
