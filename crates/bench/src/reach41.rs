//! E4 — §4.1 "Which destinations can we reach via peerings?"
//!
//! Paper values: "Ignoring transit, PEERING has AMS-IX routes to over
//! 131,000 prefixes, one quarter of the Internet." And the Alexa study:
//! 157/500 sites with peer routes; 49,776 resources on 4,182 FQDNs
//! resolving to 2,757 addresses, 1,055 of them peer-reachable.

use peering_core::{Testbed, TestbedConfig};
use peering_workloads::alexa::{CatalogConfig, ContentCatalog};
use serde::{Deserialize, Serialize};

/// Measured reachability, paper values alongside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reach41Result {
    /// Prefixes reachable via peer routes alone (paper: >131,000).
    pub peer_prefixes: usize,
    /// Total prefixes in the Internet (paper-era table: ~524k; ours is
    /// 1:8 scale by default).
    pub total_prefixes: usize,
    /// The fraction (paper: ~0.25).
    pub fraction: f64,
    /// Alexa-style catalog: ranked sites (paper: 500).
    pub sites: usize,
    /// Sites with peer routes to their front page (paper: 157).
    pub sites_covered: usize,
    /// Embedded resources (paper: 49,776).
    pub resources: usize,
    /// Distinct FQDNs (paper: 4,182).
    pub distinct_fqdns: usize,
    /// Distinct resolved addresses (paper: 2,757).
    pub distinct_ips: usize,
    /// Addresses with peer routes (paper: 1,055).
    pub ips_covered: usize,
}

/// Run E4 on the full-scale testbed (unscaled paper numbers).
pub fn run(seed: u64) -> Reach41Result {
    let tb = Testbed::build(TestbedConfig::full(seed));
    measure(&tb, seed)
}

/// Measure an already-built testbed.
pub fn measure(tb: &Testbed, seed: u64) -> Reach41Result {
    let peer_prefixes = tb.peer_reachable_prefixes();
    let total_prefixes = tb.graph().total_prefixes();
    let catalog = ContentCatalog::generate(
        tb.graph(),
        &CatalogConfig {
            seed,
            ..Default::default()
        },
    );
    let reachable = tb.peer_reachable_ases();
    let cov = catalog.coverage(&reachable);
    Reach41Result {
        peer_prefixes,
        total_prefixes,
        fraction: peer_prefixes as f64 / total_prefixes as f64,
        sites: cov.sites,
        sites_covered: cov.sites_covered,
        resources: cov.resources,
        distinct_fqdns: cov.distinct_fqdns,
        distinct_ips: cov.distinct_ips,
        ips_covered: cov.ips_covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_routes_cover_a_large_minority_of_the_internet() {
        let r = run(1);
        assert!(r.peer_prefixes > 0);
        assert!(r.peer_prefixes < r.total_prefixes);
        // Paper: one quarter (131k of ~524k). At full scale we land in a
        // tight band around it.
        assert!(
            (0.15..0.40).contains(&r.fraction),
            "fraction {} out of band",
            r.fraction
        );
        assert!(
            (80_000..220_000).contains(&r.peer_prefixes),
            "peer prefixes {} (paper: >131,000)",
            r.peer_prefixes
        );
    }

    #[test]
    fn alexa_study_shape_holds() {
        let r = run(1);
        assert_eq!(r.sites, 500);
        // Structure scale: tens of thousands of resources, thousands of
        // FQDNs and addresses.
        assert!((30_000..80_000).contains(&r.resources), "{}", r.resources);
        assert!(
            (2_000..=4_682).contains(&r.distinct_fqdns),
            "{}",
            r.distinct_fqdns
        );
        assert!(r.distinct_ips > 1_500, "{}", r.distinct_ips);
        // Coverage: a meaningful minority of front pages...
        let site_frac = r.sites_covered as f64 / r.sites as f64;
        assert!(
            (0.15..0.55).contains(&site_frac),
            "site share {site_frac} (paper: 157/500 = 0.31)"
        );
        // ...and a *larger* relative share of content addresses, because
        // hosting concentrates on open-peering CDNs (the paper's point).
        let ip_frac = r.ips_covered as f64 / r.distinct_ips as f64;
        assert!(ip_frac > 0.2, "ip share {ip_frac}");
        assert!(
            ip_frac > r.fraction,
            "content coverage ({ip_frac}) must beat raw prefix coverage ({})",
            r.fraction
        );
    }
}
