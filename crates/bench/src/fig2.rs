//! E1 — Figure 2: "BGP table memory usage as # of prefixes and peers
//! increases."
//!
//! The paper's setup: "We built example topologies consisting of Quagga
//! routers in which N peers each sent X routes to a single router.
//! Figure 2 shows the amount of memory consumed by that single Quagga
//! router." We rebuild exactly that with our speaker: N established
//! sessions, X prefixes announced over each, realistic path diversity,
//! and deep memory accounting on the resulting tables. The interner
//! ablation shows why shared path attributes keep the curve sane.

use peering_bgp::{
    AsPath, BgpMessage, Nlri, PathAttributes, PeerConfig, PeerId, Policy, Prefix, Speaker,
    SpeakerConfig, UpdateMessage,
};
use peering_netsim::{Asn, SimTime};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One measured point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Number of peers.
    pub peers: usize,
    /// Routes each peer sent.
    pub routes: usize,
    /// Table memory in bytes with attribute interning.
    pub bytes_interned: usize,
    /// Table memory in bytes without interning (naive ablation).
    pub bytes_uninterned: usize,
    /// Distinct attribute sets the interner holds.
    pub distinct_attrs: usize,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Measured points, ordered by (peers, routes).
    pub points: Vec<Fig2Point>,
}

/// Bring up a speaker with `peers` established fake sessions.
fn speaker_with_peers(peers: usize, intern: bool) -> Speaker {
    let mut cfg = SpeakerConfig::new(Asn(65000), Ipv4Addr::new(10, 0, 0, 1));
    if !intern {
        cfg = cfg.without_interning();
    }
    let mut s = Speaker::new(cfg);
    let now = SimTime::ZERO;
    for p in 0..peers {
        let asn = Asn(100 + p as u32);
        // Export nothing back: we measure the receiving router's tables
        // the way the paper measured Quagga's.
        s.add_peer(PeerConfig::new(PeerId(p as u32), asn).export(Policy::reject_all()));
        let outs = s.start_peer(PeerId(p as u32), now);
        assert!(!outs.is_empty(), "active session emits OPEN");
        // Complete the handshake by hand.
        let open = peering_bgp::message::OpenMessage::new(
            asn,
            90,
            Ipv4Addr::new(10, 1, (p >> 8) as u8, p as u8),
        );
        s.on_message(PeerId(p as u32), BgpMessage::Open(open), now);
        s.on_message(PeerId(p as u32), BgpMessage::Keepalive, now);
        assert!(s.peer_established(PeerId(p as u32)));
    }
    s
}

/// Feed `routes` prefixes from every peer into the speaker, with
/// realistic path diversity (distinct first hop per peer, a shared pool
/// of tails roughly a quarter the table size).
fn fill_tables(s: &mut Speaker, peers: usize, routes: usize) {
    let now = SimTime::from_secs(1);
    const BATCH: usize = 200;
    let tail_pool = (routes / 4).max(1);
    for p in 0..peers {
        let peer_asn = Asn(100 + p as u32);
        let mut i = 0;
        while i < routes {
            let n = BATCH.min(routes - i);
            // All prefixes in a batch that share a tail share attrs.
            let tail = i % tail_pool;
            let attrs = Arc::new(PathAttributes {
                as_path: AsPath::from_asns(&[
                    peer_asn,
                    Asn(3000 + (tail % 700) as u32),
                    Asn(20000 + tail as u32),
                ]),
                next_hop: Ipv4Addr::new(10, 1, (p >> 8) as u8, p as u8),
                ..Default::default()
            });
            let nlri: Vec<Nlri> = (i..i + n)
                .map(|k| {
                    Nlri::plain(Prefix::v4(
                        20 + (k >> 16) as u8,
                        (k >> 8) as u8,
                        k as u8,
                        0,
                        24,
                    ))
                })
                .collect();
            s.on_message(
                PeerId(p as u32),
                BgpMessage::Update(UpdateMessage::announce(attrs, nlri)),
                now,
            );
            i += n;
        }
    }
}

/// Measure one `(peers, routes)` configuration.
pub fn measure(peers: usize, routes: usize) -> Fig2Point {
    let mut interned = speaker_with_peers(peers, true);
    fill_tables(&mut interned, peers, routes);
    let bytes_interned = interned.table_memory();
    let (distinct_attrs, _, _) = interned.interner_stats();

    let mut naive = speaker_with_peers(peers, false);
    fill_tables(&mut naive, peers, routes);
    let bytes_uninterned = naive.table_memory();

    Fig2Point {
        peers,
        routes,
        bytes_interned,
        bytes_uninterned,
        distinct_attrs,
    }
}

/// Run the full sweep.
pub fn run(peer_counts: &[usize], route_counts: &[usize]) -> Fig2Result {
    let mut points = Vec::new();
    for &p in peer_counts {
        for &r in route_counts {
            points.push(measure(p, r));
        }
    }
    Fig2Result { points }
}

/// The quick sweep used by `repro` without `--full`.
pub fn quick() -> Fig2Result {
    run(&[1, 2, 5, 10, 20], &[1_000, 5_000, 20_000, 50_000])
}

/// The full sweep including the paper's Internet-scale 500K point.
pub fn full() -> Fig2Result {
    run(
        &[1, 2, 5, 10, 20],
        &[1_000, 5_000, 20_000, 50_000, 100_000, 500_000],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grows_linearly_in_routes() {
        let a = measure(2, 500);
        let b = measure(2, 5_000);
        assert!(b.bytes_interned > a.bytes_interned * 5);
        assert!(b.bytes_interned < a.bytes_interned * 30);
    }

    #[test]
    fn memory_grows_with_peers() {
        // The Loc-RIB (a radix trie since the full-scale fast path
        // landed) is a peer-independent constant in this measurement,
        // and a bigger one than the old BTreeMap — so 5 peers vs 1
        // yields >2x, not the >3x the flat-map era produced. The
        // peer-linear term is the Adj-RIBs plus per-peer attributes.
        let a = measure(1, 2_000);
        let b = measure(5, 2_000);
        assert!(
            b.bytes_interned > a.bytes_interned * 2,
            "5 peers {} vs 1 peer {}",
            b.bytes_interned,
            a.bytes_interned
        );
    }

    #[test]
    fn interning_saves_memory() {
        let p = measure(5, 3_000);
        assert!(
            p.bytes_uninterned > p.bytes_interned,
            "uninterned {} must exceed interned {}",
            p.bytes_uninterned,
            p.bytes_interned
        );
        assert!(p.distinct_attrs < 5 * 3_000);
    }

    #[test]
    fn tables_hold_what_we_sent() {
        let mut s = speaker_with_peers(3, true);
        fill_tables(&mut s, 3, 1_000);
        for p in 0..3 {
            assert_eq!(s.adj_rib_in(PeerId(p)).unwrap().len(), 1_000);
        }
        assert_eq!(s.loc_rib().len(), 1_000);
    }

    #[test]
    fn sweep_shape() {
        let r = run(&[1, 2], &[100, 200]);
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.points[0].peers, 1);
        assert_eq!(r.points[3].routes, 200);
    }
}
