//! E10 driver — the full-scale fast-path benchmark.
//!
//! Builds a generated-Internet preset, converges it on the sequential
//! engine, pins the parallel engine against it shard count by shard
//! count (bitwise digest equality, checkpoints included), measures
//! Fig. 2-style bytes/route at the preset's table size, and writes the
//! combined report as JSON.
//!
//! Usage: `scale_bench [out.json] [seed] [preset] [beacons]`
//!
//! Wall-clock timing lives here, in an example, because the repo's
//! determinism contract (`peering-analyze`, DESIGN.md §13) keeps
//! `src/` clock-free. Every nondeterministic output key is prefixed
//! `timing_` so `tools/check.sh` can strip them and byte-compare
//! double runs.

use peering_bench::scale;
use peering_netsim::SimTime;
use peering_topology::Internet;
use serde_json::Value;

/// Wall-clock milliseconds around `f`. The only clock in the bench.
#[allow(clippy::disallowed_types)]
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "results/BENCH_scale.json".to_string());
    let seed: u64 = args.get(2).map_or(42, |s| s.parse().expect("seed"));
    let preset_name = args.get(3).cloned().unwrap_or_else(|| "full".to_string());
    let beacons: usize = args.get(4).map_or(6, |s| s.parse().expect("beacons"));
    let shard_counts = [2usize, 4, 8];

    eprintln!("scale_bench: building preset {preset_name:?} (seed {seed})");
    let (net, ms_build) = timed(|| Internet::build(scale::preset(&preset_name, seed)));
    let topo = scale::build_topo(&net, beacons);
    eprintln!(
        "  {} ASes, {} sessions, {} prefixes in table, {} beacons ({ms_build:.0} ms)",
        net.graph.len(),
        topo.session_count(),
        net.graph.total_prefixes(),
        topo.beacon_count()
    );

    let cks = scale::standard_checkpoints();
    let (seq, ms_seq) = timed(|| topo.run_engine_sequential(&cks, SimTime::MAX));
    let events_per_sec = seq.events as f64 / (ms_seq / 1e3);
    eprintln!(
        "  sequential: {} events, quiesced at {} us sim-time ({ms_seq:.0} ms wall, {events_per_sec:.0} events/s)",
        seq.events,
        seq.end_time.as_micros()
    );

    let mut all_match = true;
    let mut parallel_ms = Vec::new();
    for &shards in &shard_counts {
        let (run, ms) = timed(|| topo.run_engine_parallel(shards, &cks, SimTime::MAX));
        let ok = run == seq;
        all_match &= ok;
        eprintln!(
            "  parallel x{shards}: {} events ({ms:.0} ms wall) — {}",
            run.events,
            if ok { "digests match" } else { "DIVERGED" }
        );
        parallel_ms.push((shards, ms));
    }
    assert!(
        all_match,
        "parallel engine diverged from the sequential reference"
    );

    let routes = net.graph.total_prefixes();
    let (bytes, ms_bytes) = timed(|| scale::bytes_per_route(4, routes));
    eprintln!(
        "  bytes/route @ {routes} routes x 4 peers: {:.1} interned vs {:.1} naive, {} distinct attrs ({ms_bytes:.0} ms)",
        bytes.per_route_interned, bytes.per_route_uninterned, bytes.distinct_attrs
    );

    let report = scale::report(
        &preset_name,
        seed,
        &net,
        &topo,
        &shard_counts,
        all_match,
        &seq,
        bytes,
    );
    let Value::Map(mut obj) = serde_json::to_value(&report).expect("report serializes") else {
        unreachable!("a struct serializes to a map");
    };
    obj.push(("timing_wall_ms_build".to_string(), Value::F64(ms_build)));
    obj.push(("timing_wall_ms_sequential".to_string(), Value::F64(ms_seq)));
    obj.push((
        "timing_events_per_sec_sequential".to_string(),
        Value::F64(events_per_sec),
    ));
    for (shards, ms) in parallel_ms {
        obj.push((format!("timing_wall_ms_parallel_{shards}"), Value::F64(ms)));
    }
    obj.push((
        "timing_wall_ms_bytes_per_route".to_string(),
        Value::F64(ms_bytes),
    ));

    let rendered = serde_json::to_string_pretty(&Value::Map(obj)).expect("render") + "\n";
    std::fs::write(&out, rendered).expect("write report");
    eprintln!("wrote {out}");
}
