//! Measure the paper's Internet-scale Figure 2 point at the full-scale
//! preset's table size (~524k prefixes), and record bytes/route in
//! `results/fig2.json`.
//!
//! Run standalone: `cargo run --release -p peering-bench --example
//! fig2_internet_scale`.

use peering_bench::{fmt_bytes, scale};
use peering_topology::InternetConfig;

/// Wall-clock milliseconds around `f` — the scoped wall-clock consumer;
/// everything written to `results/fig2.json` is deterministic.
#[allow(clippy::disallowed_types)]
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    // The route count the full 2014 preset targets, without paying to
    // generate the graph itself.
    let routes = InternetConfig::full(0).total_prefixes;
    let mut points = Vec::new();
    for peers in [2usize, 5] {
        let (p, ms) = timed(|| scale::bytes_per_route(peers, routes));
        println!(
            "{} peers x {} routes: shared {} ({:.1} B/route), naive {} ({:.1} B/route), \
             {} distinct attrs ({ms:.0} ms)",
            p.peers,
            p.routes,
            fmt_bytes(p.bytes_interned),
            p.per_route_interned,
            fmt_bytes(p.bytes_uninterned),
            p.per_route_uninterned,
            p.distinct_attrs
        );
        points.push(p);
    }

    let report = serde_json::Value::Map(vec![
        (
            "full_scale_prefixes".to_string(),
            serde_json::Value::U64(routes as u64),
        ),
        (
            "points".to_string(),
            serde_json::to_value(&points).expect("points serialize"),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("render") + "\n";
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/fig2.json", rendered).expect("write results/fig2.json");
    println!("wrote results/fig2.json");
}
