//! Measure the paper's Internet-scale Figure 2 point: 500K prefixes.
//! (Run standalone: `cargo run --release -p peering-bench --example
//! fig2_internet_scale`.)

// A benchmark that reports real elapsed wall time is the one legitimate
// wall-clock consumer; nothing downstream of the measurement is pinned.
#![allow(clippy::disallowed_types)]

use peering_bench::{fig2, fmt_bytes};
fn main() {
    for (peers, routes) in [(2usize, 500_000usize), (5, 500_000)] {
        let t = std::time::Instant::now();
        let p = fig2::measure(peers, routes);
        println!(
            "{} peers x {} routes: shared {}, naive {}, distinct attrs {} ({:?})",
            p.peers,
            p.routes,
            fmt_bytes(p.bytes_interned),
            fmt_bytes(p.bytes_uninterned),
            p.distinct_attrs,
            t.elapsed()
        );
    }
}
