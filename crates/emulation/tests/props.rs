//! Property tests: SPF against a Floyd–Warshall reference, and bin
//! packing invariants.

use peering_emulation::{place_containers, Spf};
use proptest::prelude::*;

fn floyd_warshall(n: usize, edges: &[(usize, usize, u32)]) -> Vec<Vec<u64>> {
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(a, b, w) in edges {
        let w = w as u64;
        if w < d[a][b] {
            d[a][b] = w;
            d[b][a] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (2usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..100), 1..(n * 2));
        (Just(n), edges)
    })
}

proptest! {
    /// Dijkstra distances agree with Floyd–Warshall on random graphs.
    #[test]
    fn spf_matches_reference((n, raw_edges) in arb_graph()) {
        let edges: Vec<(usize, usize, u32)> = raw_edges
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        let spf = Spf::new(n, &edges);
        let reference = floyd_warshall(n, &edges);
        for (src, ref_row) in reference.iter().enumerate().take(n) {
            let t = spf.from(src);
            for (dst, &ref_dist) in ref_row.iter().enumerate().take(n) {
                let got = if t.dist[dst] == u32::MAX {
                    None
                } else {
                    Some(t.dist[dst] as u64)
                };
                let expect = if ref_dist >= u64::MAX / 4 {
                    None
                } else {
                    Some(ref_dist)
                };
                prop_assert_eq!(got, expect, "src {} dst {}", src, dst);
            }
        }
    }

    /// Reconstructed paths are real walks with the claimed cost.
    #[test]
    fn spf_paths_are_consistent((n, raw_edges) in arb_graph()) {
        let edges: Vec<(usize, usize, u32)> = raw_edges
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        // Keep only the cheapest parallel edge for cost accounting.
        let mut best = std::collections::HashMap::new();
        for &(a, b, w) in &edges {
            let key = (a.min(b), a.max(b));
            let e = best.entry(key).or_insert(w);
            if w < *e {
                *e = w;
            }
        }
        let spf = Spf::new(n, &edges);
        for src in 0..n {
            let t = spf.from(src);
            for dst in 0..n {
                if let Some(path) = spf.path(src, dst) {
                    prop_assert_eq!(path[0], src);
                    prop_assert_eq!(*path.last().unwrap(), dst);
                    let cost: u64 = path
                        .windows(2)
                        .map(|w| best[&(w[0].min(w[1]), w[0].max(w[1]))] as u64)
                        .sum();
                    prop_assert_eq!(cost, t.dist[dst] as u64);
                }
            }
        }
    }

    /// Packing never overflows a host and uses a sane host count.
    #[test]
    fn packing_is_feasible_and_bounded(demands in proptest::collection::vec(1usize..1000, 1..50),
                                       cap_extra in 0usize..500) {
        let cap = 1000 + cap_extra;
        let p = place_containers(&demands, cap).unwrap();
        prop_assert_eq!(p.assignments.len(), demands.len());
        let mut used = vec![0usize; p.hosts];
        for (i, &h) in p.assignments.iter().enumerate() {
            used[h] += demands[i];
        }
        for (&u, &head) in used.iter().zip(p.headroom.iter()) {
            prop_assert!(u <= cap);
            prop_assert_eq!(u + head, cap);
        }
        // Lower bound: total demand / capacity. Upper: one per container.
        let total: usize = demands.iter().sum();
        prop_assert!(p.hosts >= total.div_ceil(cap));
        prop_assert!(p.hosts <= demands.len());
        // FFD guarantee: no more than 2x optimal-ish (loose sanity).
        prop_assert!(p.hosts <= total.div_ceil(cap) * 2 + 1);
    }
}
