//! Placement of containers onto physical hosts.
//!
//! "To run even larger topologies beyond the limitations of a single
//! host, we can connect MinineXt containers across multiple physical
//! hosts" (§4.2). Placement is first-fit-decreasing bin packing by
//! estimated memory.

use serde::{Deserialize, Serialize};

/// Why placement failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// One container alone exceeds a host's capacity.
    ContainerTooBig {
        /// Offending container index.
        container: usize,
        /// Its memory demand.
        need: usize,
        /// The per-host capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::ContainerTooBig {
                container,
                need,
                capacity,
            } => write!(
                f,
                "container {container} needs {need} bytes, host capacity is {capacity}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A computed placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `assignments[i]` = host index for container i.
    pub assignments: Vec<usize>,
    /// Number of hosts used.
    pub hosts: usize,
    /// Remaining capacity per host.
    pub headroom: Vec<usize>,
}

/// First-fit-decreasing packing of container memory demands into hosts of
/// `host_capacity` bytes each.
pub fn place_containers(
    demands: &[usize],
    host_capacity: usize,
) -> Result<Placement, PlacementError> {
    for (i, &need) in demands.iter().enumerate() {
        if need > host_capacity {
            return Err(PlacementError::ContainerTooBig {
                container: i,
                need,
                capacity: host_capacity,
            });
        }
    }
    // Sort indices by decreasing demand for FFD.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[b].cmp(&demands[a]).then(a.cmp(&b)));
    let mut free: Vec<usize> = Vec::new();
    let mut assignments = vec![0usize; demands.len()];
    for &i in &order {
        let need = demands[i];
        match free.iter().position(|&f| f >= need) {
            Some(h) => {
                free[h] -= need;
                assignments[i] = h;
            }
            None => {
                free.push(host_capacity - need);
                assignments[i] = free.len() - 1;
            }
        }
    }
    Ok(Placement {
        assignments,
        hosts: free.len(),
        headroom: free,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: usize = 1024 * 1024 * 1024;

    #[test]
    fn everything_fits_on_one_host() {
        let demands = vec![100, 200, 300];
        let p = place_containers(&demands, GB).unwrap();
        assert_eq!(p.hosts, 1);
        assert!(p.assignments.iter().all(|&h| h == 0));
        assert_eq!(p.headroom[0], GB - 600);
    }

    #[test]
    fn splits_across_hosts_when_needed() {
        // Four 3GB containers into 8GB hosts: 2 per host.
        let demands = vec![3 * GB; 4];
        let p = place_containers(&demands, 8 * GB).unwrap();
        assert_eq!(p.hosts, 2);
        let on0 = p.assignments.iter().filter(|&&h| h == 0).count();
        assert_eq!(on0, 2);
    }

    #[test]
    fn ffd_packs_tightly() {
        // 7,5,4,3,2,2,1 into capacity 12 => FFD gives 2 bins (7+5, 4+3+2+2+1).
        let demands = vec![7, 5, 4, 3, 2, 2, 1];
        let p = place_containers(&demands, 12).unwrap();
        assert_eq!(p.hosts, 2);
        // No host exceeded capacity.
        let mut used = vec![0usize; p.hosts];
        for (i, &h) in p.assignments.iter().enumerate() {
            used[h] += demands[i];
        }
        assert!(used.iter().all(|&u| u <= 12));
    }

    #[test]
    fn oversized_container_is_an_error() {
        let demands = vec![100, 9 * GB];
        let err = place_containers(&demands, 8 * GB).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::ContainerTooBig { container: 1, .. }
        ));
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn empty_input() {
        let p = place_containers(&[], GB).unwrap();
        assert_eq!(p.hosts, 0);
        assert!(p.assignments.is_empty());
    }
}
