//! The emulation core: containers, links, BGP sessions, and the event
//! loop that moves messages between hosted daemons.

use crate::container::{Container, ResourceModel};
use peering_bgp::{BgpMessage, Output, PeerConfig, PeerId, ProvenanceLog, Speaker, SpeakerEvent};
use peering_netsim::{
    FaultAction, FaultPlan, LinkParams, MsgNet, NodeId, SimDuration, SimRng, SimTime,
};
use peering_telemetry::Telemetry;

/// Handle for a session whose far end lives outside the emulation
/// (e.g. the PEERING server a PoP peers with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExternalHandle(pub usize);

/// Where the far end of a session lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// Another container inside the emulation.
    Internal {
        /// Container index.
        container: usize,
        /// The peer id the far end knows us by.
        peer: PeerId,
    },
    /// Outside the emulation; messages queue on the handle.
    External(ExternalHandle),
}

/// What travels on the emulated wire: a BGP message addressed to a peer
/// slot on the destination node, or a self-scheduled clock tick that
/// drives timers and fault injection.
enum Payload {
    /// A BGP message; deliver to `to_peer` on the destination node.
    Bgp {
        to_peer: PeerId,
        msg: BgpMessage,
    },
    Tick,
}

/// The emulated network.
pub struct Emulation {
    containers: Vec<Container>,
    net: MsgNet<Payload>,
    sessions: std::collections::BTreeMap<(usize, PeerId), SessionEnd>,
    external_out: Vec<Vec<BgpMessage>>,
    external_home: Vec<(usize, PeerId)>,
    /// `(from, to)` container pairs whose next delivered message arrives
    /// corrupted (the receiver cannot parse it).
    corrupt_next: std::collections::BTreeSet<(usize, usize)>,
    /// `(from, to)` container pairs whose next delivered UPDATE arrives
    /// with attributes corrupted in an RFC 7606-recoverable way: the
    /// receiver treats the announced routes as withdrawn but keeps the
    /// session up. Non-UPDATE deliveries pass through untouched.
    corrupt_attrs_next: std::collections::BTreeSet<(usize, usize)>,
    /// Tail-drop total already folded into the `netsim.queue.tail_drops`
    /// counter, so repeated [`export_net_stats`](Self::export_net_stats)
    /// calls add only the delta.
    tail_drops_exported: std::cell::Cell<u64>,
    /// Daemons taken down by [`FaultAction::MuxCrash`], keyed by
    /// container, waiting for a restart.
    crashed: std::collections::BTreeMap<usize, Speaker>,
    /// Resource model used for memory accounting.
    pub resources: ResourceModel,
    /// Log of speaker events `(time, container, event)`.
    pub events: Vec<(SimTime, usize, SpeakerEvent)>,
    /// Telemetry sink; disabled unless attached with
    /// [`set_telemetry`](Self::set_telemetry).
    telemetry: Telemetry,
    /// Provenance record stream; disabled unless attached with
    /// [`set_provenance`](Self::set_provenance).
    provenance: ProvenanceLog,
}

impl Emulation {
    /// An empty emulation with a deterministic transport.
    pub fn new(rng: SimRng) -> Self {
        Emulation {
            containers: Vec::new(),
            net: MsgNet::new(rng),
            sessions: std::collections::BTreeMap::new(),
            external_out: Vec::new(),
            external_home: Vec::new(),
            corrupt_next: std::collections::BTreeSet::new(),
            corrupt_attrs_next: std::collections::BTreeSet::new(),
            tail_drops_exported: std::cell::Cell::new(0),
            crashed: std::collections::BTreeMap::new(),
            resources: ResourceModel::default(),
            events: Vec::new(),
            telemetry: Telemetry::disabled(),
            provenance: ProvenanceLog::disabled(),
        }
    }

    /// Attach a telemetry handle to the emulation and every hosted daemon
    /// (including any currently crashed ones, whose stashed state comes
    /// back on restart). Containers added later inherit the handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for c in &mut self.containers {
            if let Some(d) = c.daemon.as_mut() {
                d.set_telemetry(telemetry.clone());
            }
        }
        for d in self.crashed.values_mut() {
            d.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attach a provenance log to the emulation and every hosted daemon
    /// (including any currently crashed ones). Containers added later
    /// inherit the handle, so one shared log sees the whole run.
    pub fn set_provenance(&mut self, provenance: ProvenanceLog) {
        for c in &mut self.containers {
            if let Some(d) = c.daemon.as_mut() {
                d.set_provenance(provenance.clone());
            }
        }
        for d in self.crashed.values_mut() {
            d.set_provenance(provenance.clone());
        }
        self.provenance = provenance;
    }

    /// The attached provenance log (disabled by default).
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.provenance
    }

    /// Export transport-level statistics into the telemetry registry as
    /// gauges (idempotent: the underlying totals are cumulative, so this
    /// can be called at any point — typically once, after a run).
    pub fn export_net_stats(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        t.gauge_set("netsim.transport.delivered", self.net.delivered as i64);
        t.gauge_set(
            "netsim.transport.timers_fired",
            self.net.timers_fired as i64,
        );
        t.gauge_set("netsim.transport.drops", self.net.drops as i64);
        t.gauge_set("netsim.transport.no_route", self.net.no_route as i64);
        t.gauge_set(
            "netsim.transport.queue_high_water",
            self.net.queue_high_water as i64,
        );
        for ((from, to), stats) in self.net.link_stats() {
            let base = format!("netsim.link.{}-{}", from.0, to.0);
            t.gauge_set(&format!("{base}.tx_packets"), stats.tx_packets as i64);
            t.gauge_set(&format!("{base}.dropped"), stats.dropped as i64);
            t.gauge_set(&format!("{base}.tx_bytes"), stats.tx_bytes as i64);
            if stats.tail_drops > 0 || stats.queue_peak > 0 {
                t.gauge_set(&format!("{base}.tail_drops"), stats.tail_drops as i64);
                t.gauge_set(&format!("{base}.queue_peak"), stats.queue_peak as i64);
            }
        }
        // Tail drops are a counter (snapshot validation checks counters),
        // so export the delta since the previous call; `counter_add`
        // creates the key even on a zero delta.
        let total = self.net.tail_drops();
        let prev = self.tail_drops_exported.replace(total);
        t.counter_add("netsim.queue.tail_drops", total.saturating_sub(prev));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Add a container, returning its index.
    pub fn add_container(&mut self, mut c: Container) -> usize {
        if self.telemetry.is_enabled() {
            if let Some(d) = c.daemon.as_mut() {
                d.set_telemetry(self.telemetry.clone());
            }
        }
        if self.provenance.is_enabled() {
            if let Some(d) = c.daemon.as_mut() {
                d.set_provenance(self.provenance.clone());
            }
        }
        self.containers.push(c);
        self.containers.len() - 1
    }

    /// Number of containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Borrow a container.
    pub fn container(&self, idx: usize) -> &Container {
        &self.containers[idx]
    }

    /// Borrow a container's daemon.
    pub fn daemon(&self, idx: usize) -> Option<&Speaker> {
        self.containers[idx].daemon.as_ref()
    }

    /// Mutably borrow a container's daemon.
    pub fn daemon_mut(&mut self, idx: usize) -> Option<&mut Speaker> {
        self.containers[idx].daemon.as_mut()
    }

    /// Create a veth-style link between two containers.
    pub fn link(&mut self, a: usize, b: usize, params: LinkParams) {
        self.net
            .add_link(NodeId(a as u32), NodeId(b as u32), params);
    }

    /// Take a link up/down (fault injection).
    pub fn set_link_up(&mut self, a: usize, b: usize, up: bool) {
        self.net.set_link_up(NodeId(a as u32), NodeId(b as u32), up);
    }

    /// Configure a BGP session between two router containers that share a
    /// link. `a_cfg` is installed on `a` (its view of `b`) and vice versa.
    ///
    /// Panics if either container has no daemon.
    pub fn connect_bgp(&mut self, a: usize, a_cfg: PeerConfig, b: usize, b_cfg: PeerConfig) {
        let a_peer = a_cfg.id;
        let b_peer = b_cfg.id;
        self.containers[a]
            .daemon
            .as_mut()
            .expect("container a has a daemon")
            .add_peer(a_cfg);
        self.containers[b]
            .daemon
            .as_mut()
            .expect("container b has a daemon")
            .add_peer(b_cfg);
        self.sessions.insert(
            (a, a_peer),
            SessionEnd::Internal {
                container: b,
                peer: b_peer,
            },
        );
        self.sessions.insert(
            (b, b_peer),
            SessionEnd::Internal {
                container: a,
                peer: a_peer,
            },
        );
    }

    /// Configure a session from `container` to an external party.
    /// Messages the daemon emits on this session queue on the returned
    /// handle; inject replies with [`inject_external`](Self::inject_external).
    pub fn add_external_session(&mut self, container: usize, cfg: PeerConfig) -> ExternalHandle {
        let peer = cfg.id;
        self.containers[container]
            .daemon
            .as_mut()
            .expect("container has a daemon")
            .add_peer(cfg);
        let h = ExternalHandle(self.external_out.len());
        self.external_out.push(Vec::new());
        self.external_home.push((container, peer));
        self.sessions
            .insert((container, peer), SessionEnd::External(h));
        h
    }

    fn route_outputs(&mut self, from: usize, outputs: Vec<Output>) {
        let now = self.net.now();
        for out in outputs {
            match out {
                Output::Event(ev) => self.events.push((now, from, ev)),
                Output::Send(peer, msg) => {
                    match self.sessions.get(&(from, peer)) {
                        Some(SessionEnd::Internal {
                            container,
                            peer: to_peer,
                        }) => {
                            let size = msg.approx_size();
                            self.net.send(
                                NodeId(from as u32),
                                NodeId(*container as u32),
                                size,
                                Payload::Bgp {
                                    to_peer: *to_peer,
                                    msg,
                                },
                            );
                        }
                        Some(SessionEnd::External(h)) => {
                            self.external_out[h.0].push(msg);
                        }
                        None => {
                            // Session removed mid-flight; drop.
                        }
                    }
                }
            }
        }
    }

    /// Start every configured session on a container.
    pub fn start_container(&mut self, idx: usize) {
        let now = self.net.now();
        let Some(daemon) = self.containers[idx].daemon.as_mut() else {
            return;
        };
        let peers: Vec<PeerId> = daemon.peer_ids().collect();
        let mut outputs = Vec::new();
        for p in peers {
            outputs.extend(daemon.start_peer(p, now));
        }
        self.route_outputs(idx, outputs);
    }

    /// Start every session on every container.
    pub fn start_all(&mut self) {
        for idx in 0..self.containers.len() {
            self.start_container(idx);
        }
    }

    /// Originate a prefix from a container's daemon.
    pub fn originate(&mut self, idx: usize, prefix: peering_netsim::Prefix) {
        let now = self.net.now();
        let outputs = self.containers[idx]
            .daemon
            .as_mut()
            .expect("daemon")
            .originate(prefix, now);
        self.route_outputs(idx, outputs);
    }

    /// Administratively stop one BGP session on a container, routing the
    /// resulting messages (Cease toward the peer, withdrawals toward
    /// everyone else) through the emulated network.
    pub fn stop_peer(&mut self, idx: usize, peer: PeerId) {
        let now = self.net.now();
        let outputs = self.containers[idx]
            .daemon
            .as_mut()
            .expect("daemon")
            .stop_peer(peer, now);
        self.route_outputs(idx, outputs);
    }

    /// Withdraw a locally originated prefix from a container's daemon.
    pub fn withdraw(&mut self, idx: usize, prefix: peering_netsim::Prefix) {
        let now = self.net.now();
        let outputs = self.containers[idx]
            .daemon
            .as_mut()
            .expect("daemon")
            .withdraw_origin(prefix, now);
        self.route_outputs(idx, outputs);
    }

    /// Swap the import policy a container's daemon applies on `peer` and
    /// re-filter what that peer already advertised, routing any resulting
    /// withdrawals through the network. The containment engine uses this
    /// to quarantine (and later reinstate) a client session.
    pub fn set_peer_import(&mut self, idx: usize, peer: PeerId, policy: peering_bgp::Policy) {
        let now = self.net.now();
        let outputs = self.containers[idx]
            .daemon
            .as_mut()
            .expect("daemon")
            .set_peer_import(peer, policy, now);
        self.route_outputs(idx, outputs);
    }

    /// Ask `peer` to re-advertise its table (RFC 2918 ROUTE-REFRESH),
    /// routing the request through the network.
    pub fn request_refresh(&mut self, idx: usize, peer: PeerId) {
        let outputs = self.containers[idx]
            .daemon
            .as_mut()
            .expect("daemon")
            .request_refresh(peer);
        self.route_outputs(idx, outputs);
    }

    /// Inject a message arriving from outside on an external session.
    pub fn inject_external(&mut self, h: ExternalHandle, msg: BgpMessage) {
        let (container, peer) = self.external_home[h.0];
        let now = self.net.now();
        let outputs = self.containers[container]
            .daemon
            .as_mut()
            .expect("daemon")
            .on_message(peer, msg, now);
        self.route_outputs(container, outputs);
    }

    /// Drain messages the emulation wants to send out on a handle.
    pub fn drain_external(&mut self, h: ExternalHandle) -> Vec<BgpMessage> {
        std::mem::take(&mut self.external_out[h.0])
    }

    /// Deliver one BGP message to a container's daemon, honoring any
    /// pending corruption marker for the `(from, to)` pair.
    fn deliver_bgp(&mut self, from: usize, to: usize, to_peer: PeerId, msg: BgpMessage) {
        let now = self.net.now();
        let corrupted = self.corrupt_next.remove(&(from, to));
        if corrupted {
            self.telemetry
                .counter_inc("emulation.net.corrupt_deliveries");
        }
        // Attribute corruption only makes sense on an UPDATE; the marker
        // stays armed until one actually passes (a KEEPALIVE in between
        // must not consume it).
        let corrupt_attrs = !corrupted
            && matches!(&msg, BgpMessage::Update(_))
            && self.corrupt_attrs_next.remove(&(from, to));
        if corrupt_attrs {
            self.telemetry
                .counter_inc("emulation.net.corrupt_attr_deliveries");
        }
        let Some(daemon) = self.containers[to].daemon.as_mut() else {
            return;
        };
        let outputs = if corrupted {
            daemon.on_corrupt_message(to_peer, now)
        } else if corrupt_attrs {
            let BgpMessage::Update(update) = msg else {
                unreachable!("corrupt_attrs implies an UPDATE payload");
            };
            daemon.on_malformed_update(to_peer, update, now)
        } else {
            daemon.on_message(to_peer, msg, now)
        };
        self.route_outputs(to, outputs);
    }

    /// Process one in-flight delivery. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((_now, delivery)) = self.net.next() else {
            return false;
        };
        match delivery.msg {
            Payload::Tick => self.tick_all(),
            Payload::Bgp { to_peer, msg } => {
                self.deliver_bgp(
                    delivery.from.0 as usize,
                    delivery.to.0 as usize,
                    to_peer,
                    msg,
                );
            }
        }
        true
    }

    /// Run until no messages are in flight (bounded by `limit` steps).
    /// Returns the number of deliveries processed.
    pub fn run_until_quiet(&mut self, limit: usize) -> usize {
        let mut steps = 0;
        while steps < limit && self.step() {
            steps += 1;
        }
        steps
    }

    /// Apply one fault action at the current simulated time. Link-level
    /// actions mutate the transport directly; session- and daemon-level
    /// actions are routed to the hosted speakers.
    pub fn apply_fault(&mut self, action: FaultAction) {
        self.telemetry.counter_inc("emulation.faults.applied");
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                self.net.now(),
                "emulation.faults.action",
                &[("action", format!("{action:?}").into())],
            );
        }
        match action {
            FaultAction::LinkDown(a, b) => self.net.set_link_up(a, b, false),
            FaultAction::LinkUp(a, b) => self.net.set_link_up(a, b, true),
            FaultAction::SetLoss(a, b, p) => {
                for (x, y) in [(a, b), (b, a)] {
                    if let Some(l) = self.net.link_mut(x, y) {
                        l.params.loss = p.clamp(0.0, 1.0);
                    }
                }
            }
            FaultAction::DelaySpike(a, b, extra) => {
                for (x, y) in [(a, b), (b, a)] {
                    if let Some(l) = self.net.link_mut(x, y) {
                        l.params.delay += extra;
                    }
                }
            }
            // At the emulation layer a black hole and a partition act the
            // same way: nothing enters or leaves the node.
            FaultAction::BlackholeNode(n) | FaultAction::PartitionAs(n) => {
                self.net.set_node_links_up(n, false)
            }
            FaultAction::RestoreNode(n) | FaultAction::HealAs(n) => {
                self.net.set_node_links_up(n, true)
            }
            FaultAction::SessionReset(a, b) => {
                self.reset_sessions_between(a.0 as usize, b.0 as usize)
            }
            FaultAction::CorruptMessage(a, b) => {
                self.corrupt_next.insert((a.0 as usize, b.0 as usize));
            }
            FaultAction::CorruptAttributes(a, b) => {
                self.corrupt_attrs_next.insert((a.0 as usize, b.0 as usize));
            }
            FaultAction::MuxCrash(n) => self.crash_daemon(n.0 as usize),
            FaultAction::MuxRestart(n) => self.restart_daemon(n.0 as usize),
        }
    }

    /// Tear down every BGP session riding the `a`<->`b` adjacency, on
    /// both ends, without any message on the wire (TCP reset).
    pub fn reset_sessions_between(&mut self, a: usize, b: usize) {
        let now = self.net.now();
        let mut ends: Vec<(usize, PeerId)> = self
            .sessions
            .iter()
            .filter_map(|((c, pid), end)| match end {
                SessionEnd::Internal { container, .. }
                    if (*c == a && *container == b) || (*c == b && *container == a) =>
                {
                    Some((*c, *pid))
                }
                _ => None,
            })
            .collect();
        // The session map is a HashMap; sort for deterministic replay.
        ends.sort();
        for (c, pid) in ends {
            let Some(daemon) = self.containers[c].daemon.as_mut() else {
                continue;
            };
            let outputs = daemon.reset_peer(pid, now);
            self.route_outputs(c, outputs);
        }
    }

    /// Crash the daemon on a container: its volatile state leaves the
    /// emulation (stashed for a later restart) and every far end sees its
    /// transport die.
    pub fn crash_daemon(&mut self, idx: usize) {
        let now = self.net.now();
        let Some(daemon) = self.containers[idx].daemon.take() else {
            return;
        };
        self.telemetry.counter_inc("emulation.daemon.crashes");
        self.crashed.insert(idx, daemon);
        let mut far: Vec<(usize, PeerId)> = self
            .sessions
            .iter()
            .filter_map(|((c, pid), end)| match end {
                SessionEnd::Internal { container, .. } if *container == idx && *c != idx => {
                    Some((*c, *pid))
                }
                _ => None,
            })
            .collect();
        far.sort();
        for (c, pid) in far {
            let Some(d) = self.containers[c].daemon.as_mut() else {
                continue;
            };
            let outputs = d.reset_peer(pid, now);
            self.route_outputs(c, outputs);
        }
    }

    /// Restart a crashed daemon: configuration and local originations
    /// survived, learned state did not. Sessions restart immediately.
    pub fn restart_daemon(&mut self, idx: usize) {
        let now = self.net.now();
        let Some(mut daemon) = self.crashed.remove(&idx) else {
            return;
        };
        self.telemetry.counter_inc("emulation.daemon.restarts");
        let outputs = daemon.restart(now);
        self.containers[idx].daemon = Some(daemon);
        self.route_outputs(idx, outputs);
        self.start_container(idx);
    }

    /// Drive the emulation under a scripted fault plan.
    ///
    /// A tick fires every `tick_every` of simulated time: due faults are
    /// applied, then every daemon's timers run (hold/keepalive expiry,
    /// ConnectRetry reconnects, graceful-restart sweeps). The tick chain
    /// stops once `until` is reached and the plan is exhausted; remaining
    /// in-flight messages then drain. Returns deliveries processed,
    /// bounded by `limit`.
    pub fn run_with_faults(
        &mut self,
        plan: &mut FaultPlan,
        until: SimTime,
        tick_every: SimDuration,
        limit: usize,
    ) -> usize {
        assert!(!tick_every.is_zero(), "tick_every must be positive");
        let mut steps = 0;
        self.net
            .set_timer(NodeId(0), SimDuration::ZERO, Payload::Tick);
        while steps < limit {
            let Some((now, delivery)) = self.net.next() else {
                break;
            };
            steps += 1;
            match delivery.msg {
                Payload::Tick => {
                    for action in plan.due(now) {
                        self.apply_fault(action);
                    }
                    self.tick_all();
                    if now < until || !plan.exhausted() {
                        self.net.set_timer(NodeId(0), tick_every, Payload::Tick);
                    }
                }
                Payload::Bgp { to_peer, msg } => {
                    self.deliver_bgp(
                        delivery.from.0 as usize,
                        delivery.to.0 as usize,
                        to_peer,
                        msg,
                    );
                }
            }
        }
        steps
    }

    /// Drive every daemon's timers at the current time.
    pub fn tick_all(&mut self) {
        let now = self.net.now();
        for idx in 0..self.containers.len() {
            let Some(daemon) = self.containers[idx].daemon.as_mut() else {
                continue;
            };
            let outputs = daemon.tick(now);
            self.route_outputs(idx, outputs);
        }
    }

    /// Total estimated memory of the emulation.
    pub fn total_memory(&self) -> usize {
        self.containers
            .iter()
            .map(|c| c.memory(&self.resources))
            .sum()
    }

    /// Per-container memory estimates.
    pub fn memory_by_container(&self) -> Vec<(String, usize)> {
        self.containers
            .iter()
            .map(|c| (c.name.clone(), c.memory(&self.resources)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{Asn, Prefix, SpeakerConfig};
    use std::net::Ipv4Addr;

    fn router(name: &str, asn: u32) -> Container {
        Container::router(
            name,
            Speaker::new(SpeakerConfig::new(
                Asn(asn),
                Ipv4Addr::new(10, 0, 0, (asn % 250) as u8 + 1),
            )),
        )
    }

    fn two_router_emulation() -> (Emulation, usize, usize) {
        let mut emu = Emulation::new(SimRng::new(1));
        let a = emu.add_container(router("a", 65001));
        let b = emu.add_container(router("b", 65002));
        emu.link(a, b, LinkParams::default());
        emu.connect_bgp(
            a,
            PeerConfig::new(PeerId(0), Asn(65002)),
            b,
            PeerConfig::new(PeerId(0), Asn(65001)).passive(),
        );
        (emu, a, b)
    }

    #[test]
    fn session_establishes_and_routes_flow() {
        let (mut emu, a, b) = two_router_emulation();
        emu.start_all();
        emu.run_until_quiet(1000);
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().peer_established(PeerId(0)));
        let p = Prefix::v4(10, 50, 0, 0, 16);
        emu.originate(a, p);
        emu.run_until_quiet(1000);
        assert!(emu.daemon(b).unwrap().loc_rib().get(&p).is_some());
        // PeerUp events were logged for both ends.
        let ups = emu
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, SpeakerEvent::PeerUp(_)))
            .count();
        assert_eq!(ups, 2);
    }

    #[test]
    fn chain_propagation_across_three_routers() {
        let mut emu = Emulation::new(SimRng::new(2));
        let a = emu.add_container(router("a", 65001));
        let b = emu.add_container(router("b", 65002));
        let c = emu.add_container(router("c", 65003));
        emu.link(a, b, LinkParams::default());
        emu.link(b, c, LinkParams::default());
        emu.connect_bgp(
            a,
            PeerConfig::new(PeerId(0), Asn(65002)),
            b,
            PeerConfig::new(PeerId(0), Asn(65001)).passive(),
        );
        emu.connect_bgp(
            b,
            PeerConfig::new(PeerId(1), Asn(65003)),
            c,
            PeerConfig::new(PeerId(0), Asn(65002)).passive(),
        );
        emu.start_all();
        emu.run_until_quiet(10_000);
        let p = Prefix::v4(10, 60, 0, 0, 16);
        emu.originate(a, p);
        emu.run_until_quiet(10_000);
        let at_c = emu.daemon(c).unwrap().loc_rib().get(&p).expect("c learned");
        assert_eq!(at_c.attrs.as_path.to_string(), "65002 65001");
    }

    #[test]
    fn external_session_bridges_out() {
        let (mut emu, a, _b) = two_router_emulation();
        let h = emu.add_external_session(a, PeerConfig::new(PeerId(9), Asn(47065)));
        emu.start_all();
        emu.run_until_quiet(1000);
        // The daemon sent an OPEN out the external session.
        let out = emu.drain_external(h);
        assert!(out.iter().any(|m| matches!(m, BgpMessage::Open(_))));
        // Build an external speaker, feed it, and bridge replies back.
        let mut ext = Speaker::new(SpeakerConfig::new(Asn(47065), Ipv4Addr::new(100, 64, 0, 1)));
        ext.add_peer(PeerConfig::new(PeerId(0), Asn(65001)).passive());
        ext.start_peer(PeerId(0), SimTime::ZERO);
        let mut inbound = out;
        for _ in 0..16 {
            if inbound.is_empty() {
                break;
            }
            let mut replies = Vec::new();
            for m in inbound.drain(..) {
                for o in ext.on_message(PeerId(0), m, SimTime::ZERO) {
                    if let Output::Send(_, msg) = o {
                        replies.push(msg);
                    }
                }
            }
            for m in replies {
                emu.inject_external(h, m);
            }
            emu.run_until_quiet(1000);
            inbound = emu.drain_external(h);
        }
        assert!(ext.peer_established(PeerId(0)));
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(9)));
        // Routes originated externally reach the emulation.
        let p = Prefix::v4(203, 0, 113, 0, 24);
        let mut outs = Vec::new();
        for o in ext.originate(p, SimTime::ZERO) {
            if let Output::Send(_, m) = o {
                outs.push(m);
            }
        }
        for m in outs {
            emu.inject_external(h, m);
        }
        emu.run_until_quiet(1000);
        assert!(emu.daemon(a).unwrap().loc_rib().get(&p).is_some());
    }

    #[test]
    fn telemetry_observes_emulated_session() {
        let (mut emu, a, _b) = two_router_emulation();
        let telemetry = Telemetry::new();
        emu.set_telemetry(telemetry.clone());
        emu.start_all();
        emu.run_until_quiet(1000);
        emu.originate(a, Prefix::v4(10, 50, 0, 0, 16));
        emu.run_until_quiet(1000);
        emu.export_net_stats();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("bgp.session.established"), 2);
        assert!(snap.counter("bgp.speaker.updates_out") > 0);
        assert!(snap.gauge("netsim.transport.delivered").unwrap_or(0) > 0);
        assert!(snap
            .gauges
            .keys()
            .any(|k| k.starts_with("netsim.link.") && k.ends_with(".tx_packets")));
        assert_eq!(snap.validate(&["bgp.session.established"]), Ok(()));
    }

    #[test]
    fn link_down_blocks_messages() {
        let (mut emu, a, b) = two_router_emulation();
        emu.set_link_up(a, b, false);
        emu.start_all();
        emu.run_until_quiet(1000);
        assert!(!emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(!emu.daemon(b).unwrap().peer_established(PeerId(0)));
    }

    #[test]
    fn memory_accounting_sums_containers() {
        let (mut emu, a, _b) = two_router_emulation();
        let before = emu.total_memory();
        for i in 0..100u32 {
            emu.originate(a, Prefix::v4(10, 70, i as u8, 0, 24));
        }
        let after = emu.total_memory();
        assert!(after > before);
        let by = emu.memory_by_container();
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].0, "a");
    }

    #[test]
    fn run_until_quiet_respects_limit() {
        let (mut emu, _a, _b) = two_router_emulation();
        emu.start_all();
        let steps = emu.run_until_quiet(1);
        assert_eq!(steps, 1);
    }

    /// A router whose sessions reconnect by themselves and whose peers
    /// are retained across restarts (the chaos-ready configuration).
    fn resilient_router(name: &str, asn: u32, seed: u64) -> Container {
        Container::router(
            name,
            Speaker::new(
                SpeakerConfig::new(Asn(asn), Ipv4Addr::new(10, 0, 0, (asn % 250) as u8 + 1))
                    .with_connect_retry(peering_bgp::ConnectRetryConfig::new(seed)),
            ),
        )
    }

    fn resilient_pair_emulation() -> (Emulation, usize, usize) {
        let mut emu = Emulation::new(SimRng::new(7));
        let a = emu.add_container(resilient_router("a", 65001, 1));
        let b = emu.add_container(resilient_router("b", 65002, 2));
        emu.link(a, b, LinkParams::default());
        emu.connect_bgp(
            a,
            PeerConfig::new(PeerId(0), Asn(65002)).graceful_restart(SimDuration::from_secs(120)),
            b,
            PeerConfig::new(PeerId(0), Asn(65001))
                .passive()
                .graceful_restart(SimDuration::from_secs(120)),
        );
        (emu, a, b)
    }

    #[test]
    fn session_reset_fault_recovers_via_retry() {
        let (mut emu, a, b) = resilient_pair_emulation();
        emu.start_all();
        emu.run_until_quiet(10_000);
        let p = Prefix::v4(10, 50, 0, 0, 16);
        emu.originate(a, p);
        emu.run_until_quiet(10_000);
        assert!(emu.daemon(b).unwrap().loc_rib().get(&p).is_some());

        let mut plan = FaultPlan::new().at(
            SimTime::from_secs(10),
            FaultAction::SessionReset(NodeId(a as u32), NodeId(b as u32)),
        );
        emu.run_with_faults(
            &mut plan,
            SimTime::from_secs(60),
            SimDuration::from_secs(1),
            100_000,
        );
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().peer_established(PeerId(0)));
        assert!(
            emu.daemon(b).unwrap().loc_rib().get(&p).is_some(),
            "route survives the reset"
        );
        // Both ends logged the loss.
        let downs = emu
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, SpeakerEvent::PeerDown(_, _)))
            .count();
        assert!(downs >= 2, "downs={downs}");
    }

    #[test]
    fn corrupt_message_fault_notifies_and_recovers() {
        let (mut emu, a, b) = resilient_pair_emulation();
        emu.start_all();
        emu.run_until_quiet(10_000);
        let p = Prefix::v4(10, 51, 0, 0, 16);
        emu.originate(a, p);
        emu.run_until_quiet(10_000);

        // Corrupt the next a->b message, then originate so one flows.
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(5),
                FaultAction::CorruptMessage(NodeId(a as u32), NodeId(b as u32)),
            )
            .at(
                SimTime::from_secs(6),
                FaultAction::SessionReset(NodeId(a as u32), NodeId(b as u32)),
            );
        emu.originate(a, Prefix::v4(10, 52, 0, 0, 16));
        emu.run_with_faults(
            &mut plan,
            SimTime::from_secs(90),
            SimDuration::from_secs(1),
            100_000,
        );
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().loc_rib().get(&p).is_some());
    }

    #[test]
    fn mux_crash_and_restart_relearns_routes() {
        let (mut emu, a, b) = resilient_pair_emulation();
        emu.start_all();
        emu.run_until_quiet(10_000);
        let pa = Prefix::v4(10, 53, 0, 0, 16);
        let pb = Prefix::v4(10, 54, 0, 0, 16);
        emu.originate(a, pa);
        emu.originate(b, pb);
        emu.run_until_quiet(10_000);
        assert!(emu.daemon(a).unwrap().loc_rib().get(&pb).is_some());

        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(10),
                FaultAction::MuxCrash(NodeId(b as u32)),
            )
            .at(
                SimTime::from_secs(20),
                FaultAction::MuxRestart(NodeId(b as u32)),
            );
        emu.run_with_faults(
            &mut plan,
            SimTime::from_secs(120),
            SimDuration::from_secs(1),
            200_000,
        );
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().peer_established(PeerId(0)));
        // b relearned a's route after losing everything; a still has b's
        // (origination persisted across the crash).
        assert!(emu.daemon(b).unwrap().loc_rib().get(&pa).is_some());
        assert!(emu.daemon(a).unwrap().loc_rib().get(&pb).is_some());
    }

    #[test]
    fn partition_and_heal_reconverges() {
        let (mut emu, a, b) = resilient_pair_emulation();
        emu.start_all();
        emu.run_until_quiet(10_000);
        let p = Prefix::v4(10, 55, 0, 0, 16);
        emu.originate(a, p);
        emu.run_until_quiet(10_000);

        // Partition b long enough for its hold timer (90 s) to expire,
        // then heal; retry brings the session back.
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(10),
                FaultAction::PartitionAs(NodeId(b as u32)),
            )
            .at(
                SimTime::from_secs(150),
                FaultAction::HealAs(NodeId(b as u32)),
            );
        emu.run_with_faults(
            &mut plan,
            SimTime::from_secs(400),
            SimDuration::from_secs(1),
            500_000,
        );
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().loc_rib().get(&p).is_some());
    }

    #[test]
    fn delay_spike_slows_but_does_not_break() {
        let (mut emu, a, b) = resilient_pair_emulation();
        emu.start_all();
        emu.run_until_quiet(10_000);
        let mut plan = FaultPlan::new().at(
            SimTime::from_secs(5),
            FaultAction::DelaySpike(
                NodeId(a as u32),
                NodeId(b as u32),
                SimDuration::from_millis(500),
            ),
        );
        let p = Prefix::v4(10, 56, 0, 0, 16);
        emu.originate(a, p);
        emu.run_with_faults(
            &mut plan,
            SimTime::from_secs(60),
            SimDuration::from_secs(1),
            100_000,
        );
        assert!(emu.daemon(a).unwrap().peer_established(PeerId(0)));
        assert!(emu.daemon(b).unwrap().loc_rib().get(&p).is_some());
    }
}
