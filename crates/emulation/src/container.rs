//! Containers and their resource accounting.

use peering_bgp::Speaker;
use serde::{Deserialize, Serialize};

/// What runs inside a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerKind {
    /// A router running a BGP daemon (the Quagga analog).
    Router,
    /// An end host (traffic source/sink).
    Host,
    /// A layer-2 switch.
    Switch,
}

/// Memory model constants, calibrated to the paper's context: Mininet
/// containers are cheap (network namespaces), a Quagga `bgpd` has a few
/// MB of baseline footprint, and the routing tables dominate at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Per-container namespace/bookkeeping overhead (bytes).
    pub container_base: usize,
    /// Baseline footprint of a routing daemon before any routes (bytes).
    pub daemon_base: usize,
    /// Baseline footprint of a plain host process (bytes).
    pub host_base: usize,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            container_base: 1_500_000, // ~1.5 MB per namespace + veth
            daemon_base: 4_000_000,    // ~4 MB empty bgpd
            host_base: 500_000,
        }
    }
}

/// One emulated container.
pub struct Container {
    /// Name ("Amsterdam", "h1").
    pub name: String,
    /// Role.
    pub kind: ContainerKind,
    /// The hosted BGP daemon, if this is a router.
    pub daemon: Option<Speaker>,
}

impl Container {
    /// A router container hosting `daemon`.
    pub fn router(name: &str, daemon: Speaker) -> Self {
        Container {
            name: name.to_string(),
            kind: ContainerKind::Router,
            daemon: Some(daemon),
        }
    }

    /// A plain host container.
    pub fn host(name: &str) -> Self {
        Container {
            name: name.to_string(),
            kind: ContainerKind::Host,
            daemon: None,
        }
    }

    /// Estimated resident memory of this container under `model`.
    pub fn memory(&self, model: &ResourceModel) -> usize {
        let base = model.container_base
            + match self.kind {
                ContainerKind::Router => model.daemon_base,
                ContainerKind::Host => model.host_base,
                ContainerKind::Switch => 0,
            };
        base + self.daemon.as_ref().map(|d| d.table_memory()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{Asn, SpeakerConfig};
    use std::net::Ipv4Addr;

    fn daemon() -> Speaker {
        Speaker::new(SpeakerConfig::new(Asn(65001), Ipv4Addr::new(10, 0, 0, 1)))
    }

    #[test]
    fn router_memory_includes_daemon_base() {
        let model = ResourceModel::default();
        let r = Container::router("r1", daemon());
        let h = Container::host("h1");
        assert!(r.memory(&model) > h.memory(&model));
        assert!(r.memory(&model) >= model.container_base + model.daemon_base);
    }

    #[test]
    fn memory_grows_with_routes() {
        let model = ResourceModel::default();
        let mut d = daemon();
        let empty = Container::router("r", daemon()).memory(&model);
        for i in 0..200u32 {
            d.originate(
                peering_bgp::Prefix::v4(10, (i >> 8) as u8, i as u8, 0, 24),
                peering_netsim::SimTime::ZERO,
            );
        }
        let full = Container::router("r", d).memory(&model);
        assert!(full > empty);
    }

    #[test]
    fn kinds_have_expected_bases() {
        let model = ResourceModel::default();
        let s = Container {
            name: "sw".into(),
            kind: ContainerKind::Switch,
            daemon: None,
        };
        assert_eq!(s.memory(&model), model.container_base);
    }
}
