//! MinineXt-style lightweight intradomain emulation.
//!
//! §3 of the paper: "Mininet's lightweight container-based emulation
//! environment may be appropriate, allowing fine-grained control over
//! arbitrary topologies without the memory overhead of a virtual
//! machine... Our extension layer, MinineXt, makes it possible to build
//! highly-scalable PEERING experiments with ease" — and §4.2 demonstrates
//! it by emulating Hurricane Electric's 24-PoP backbone with a Quagga
//! routing engine per PoP on one 8 GB desktop.
//!
//! This crate is that layer for the reproduction:
//!
//! * [`container`] — containers with per-container resource accounting
//!   (the container itself is cheap; the daemons inside dominate).
//! * [`igp`] — shortest-path-first intradomain routing over weighted
//!   links, feeding IGP costs into the BGP decision process.
//! * [`emulation`] — the network namespace: containers, links, BGP
//!   sessions between hosted daemons, message scheduling over the
//!   discrete-event transport, and *external sessions* that connect an
//!   emulated router to something outside the emulation (a PEERING
//!   server).
//! * [`builder`] — build an emulation from a Topology-Zoo PoP map: one
//!   router per PoP, iBGP full mesh with IGP costs, one prefix per PoP.
//! * [`host`] — placement of containers onto physical hosts with memory
//!   budgets ("to run even larger topologies... connect MinineXt
//!   containers across multiple physical hosts").

pub mod builder;
pub mod container;
pub mod emulation;
pub mod host;
pub mod igp;

pub use builder::{build_from_pops, PopEmulation};
pub use container::{Container, ContainerKind, ResourceModel};
pub use emulation::{Emulation, ExternalHandle, SessionEnd};
pub use host::{place_containers, Placement, PlacementError};
pub use igp::{Spf, SpfTable};
