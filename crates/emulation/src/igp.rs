//! Intradomain shortest-path routing (the OSPF analog).
//!
//! The emulated AS runs an IGP over its weighted links; the SPF results
//! provide (a) next hops for the intradomain data plane and (b) the IGP
//! cost to each iBGP peer, which feeds step 6 of the BGP decision
//! process (hot-potato routing).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All-pairs shortest paths over a small weighted graph.
#[derive(Debug, Clone)]
pub struct Spf {
    n: usize,
    adj: Vec<Vec<(usize, u32)>>,
}

/// One source's shortest-path tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpfTable {
    /// `dist[v]` = cost from the source, `u32::MAX` if unreachable.
    pub dist: Vec<u32>,
    /// `next_hop[v]` = first hop from the source toward v (`usize::MAX`
    /// for self/unreachable).
    pub next_hop: Vec<usize>,
}

impl Spf {
    /// Build from an undirected weighted edge list over `n` nodes.
    pub fn new(n: usize, edges: &[(usize, usize, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b, w) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        // Deterministic relaxation order.
        for l in &mut adj {
            l.sort_unstable();
        }
        Spf { n, adj }
    }

    /// Nodes in the graph.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dijkstra from `src`.
    pub fn from(&self, src: usize) -> SpfTable {
        let mut dist = vec![u32::MAX; self.n];
        let mut next_hop = vec![usize::MAX; self.n];
        if src >= self.n {
            return SpfTable { dist, next_hop };
        }
        dist[src] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u32, src, usize::MAX)));
        while let Some(Reverse((d, u, first))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u != src && next_hop[u] == usize::MAX {
                next_hop[u] = first;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    let via = if u == src { v } else { first };
                    next_hop[v] = via;
                    heap.push(Reverse((nd, v, via)));
                }
            }
        }
        SpfTable { dist, next_hop }
    }

    /// All-pairs tables.
    pub fn all_pairs(&self) -> Vec<SpfTable> {
        (0..self.n).map(|s| self.from(s)).collect()
    }

    /// The full hop-by-hop path from `src` to `dst`, if reachable.
    pub fn path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let table = self.from(src);
        if table.dist[dst] == u32::MAX {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        // Walk next hops from each successive node.
        for _ in 0..self.n {
            if cur == dst {
                return Some(path);
            }
            let t = self.from(cur);
            let nh = t.next_hop[dst];
            if nh == usize::MAX {
                return None;
            }
            path.push(nh);
            cur = nh;
        }
        (cur == dst).then_some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 --1-- 1 --1-- 2
    ///  \------5------/
    fn triangle() -> Spf {
        Spf::new(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)])
    }

    #[test]
    fn shortest_paths_and_next_hops() {
        let spf = triangle();
        let t = spf.from(0);
        assert_eq!(t.dist, vec![0, 1, 2]);
        // Toward 2 the first hop is 1 (cost 2 < direct 5).
        assert_eq!(t.next_hop[2], 1);
        assert_eq!(t.next_hop[1], 1);
        assert_eq!(t.next_hop[0], usize::MAX);
    }

    #[test]
    fn path_reconstruction() {
        let spf = triangle();
        assert_eq!(spf.path(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(spf.path(2, 0), Some(vec![2, 1, 0]));
        assert_eq!(spf.path(1, 1), Some(vec![1]));
    }

    #[test]
    fn unreachable_nodes() {
        let spf = Spf::new(4, &[(0, 1, 1)]);
        let t = spf.from(0);
        assert_eq!(t.dist[2], u32::MAX);
        assert_eq!(t.dist[3], u32::MAX);
        assert_eq!(spf.path(0, 3), None);
    }

    #[test]
    fn all_pairs_symmetric_costs() {
        let spf = triangle();
        let all = spf.all_pairs();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(all[i].dist[j], all[j].dist[i]);
            }
        }
    }

    #[test]
    fn deterministic_tie_handling() {
        // Two equal-cost paths 0->3: via 1 or via 2; lowest index wins.
        let spf = Spf::new(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let a = spf.from(0);
        let b = spf.from(0);
        assert_eq!(a, b);
        assert_eq!(a.dist[3], 2);
        assert_eq!(a.next_hop[3], 1, "lowest-index neighbor wins ties");
    }

    #[test]
    fn out_of_range_source() {
        let spf = triangle();
        let t = spf.from(99);
        assert!(t.dist.iter().all(|&d| d == u32::MAX));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        Spf::new(2, &[(0, 5, 1)]);
    }
}
