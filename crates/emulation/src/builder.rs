//! Build an emulation from a Topology-Zoo PoP map.
//!
//! §4.2's shape: one routing engine per PoP, one prefix per PoP, sessions
//! between adjacent PoPs, and the Amsterdam PoP connected out to AMS-IX.
//! Each PoP is given its own private ASN (the paper's emulated domains
//! run private ASNs "behind" PEERING, which strips them at the border),
//! so adjacent-PoP sessions are eBGP and routes propagate hop by hop
//! exactly as the paper describes.

use crate::container::Container;
use crate::emulation::{Emulation, ExternalHandle};
use crate::igp::Spf;
use peering_bgp::{Asn, PeerConfig, PeerId, Prefix, Speaker, SpeakerConfig};
use peering_netsim::{LinkParams, SimDuration, SimRng};
use peering_topology::PopTopology;
use std::net::Ipv4Addr;

/// An emulation built from a PoP topology.
pub struct PopEmulation {
    /// The underlying emulation.
    pub emu: Emulation,
    /// Container index per PoP.
    pub routers: Vec<usize>,
    /// Private ASN per PoP.
    pub asns: Vec<Asn>,
    /// The prefix each PoP originates.
    pub prefixes: Vec<Prefix>,
    /// SPF over the PoP graph (distance-weighted).
    pub spf: Spf,
}

/// Build the emulation: one router per PoP, eBGP on every PoP adjacency,
/// one /16 per PoP from `10.(100+i).0.0`.
///
/// `base_asn` must leave room for one private ASN per PoP.
pub fn build_from_pops(topo: &PopTopology, base_asn: u32, seed: u64) -> PopEmulation {
    let mut emu = Emulation::new(SimRng::new(seed).fork("pop-emulation"));
    let n = topo.pops.len();
    let mut routers = Vec::with_capacity(n);
    let mut asns = Vec::with_capacity(n);
    let mut prefixes = Vec::with_capacity(n);
    for (i, pop) in topo.pops.iter().enumerate() {
        let asn = Asn(base_asn + i as u32);
        assert!(asn.is_private(), "PoP ASNs must be private, got {asn}");
        let router_id = Ipv4Addr::new(10, 255, i as u8, 1);
        let daemon = Speaker::new(SpeakerConfig::new(asn, router_id));
        let idx = emu.add_container(Container::router(pop.city, daemon));
        routers.push(idx);
        asns.push(asn);
        prefixes.push(Prefix::v4(10, 100 + i as u8, 0, 0, 16));
    }
    // Links and eBGP sessions along every adjacency. Link latency scales
    // with the topology's distance-derived cost (~1 ms per 100 km => the
    // cost unit maps to ~hundreds of km).
    for &(a, b, cost) in &topo.links {
        let latency = SimDuration::from_micros(200 + cost as u64 * 10);
        emu.link(routers[a], routers[b], LinkParams::with_delay(latency));
        // Peer ids: use the remote PoP index, unique per router.
        emu.connect_bgp(
            routers[a],
            PeerConfig::new(PeerId(b as u32), asns[b]),
            routers[b],
            PeerConfig::new(PeerId(a as u32), asns[a]).passive(),
        );
    }
    let spf = Spf::new(n, &topo.links);
    PopEmulation {
        emu,
        routers,
        asns,
        prefixes,
        spf,
    }
}

impl PopEmulation {
    /// Bring all sessions up and originate each PoP's prefix.
    /// Returns the number of deliveries processed to convergence.
    pub fn converge(&mut self, step_limit: usize) -> usize {
        self.emu.start_all();
        let mut steps = self.emu.run_until_quiet(step_limit);
        for (i, &r) in self.routers.iter().enumerate() {
            self.emu.originate(r, self.prefixes[i]);
        }
        steps += self.emu.run_until_quiet(step_limit);
        steps
    }

    /// Attach an external (out-of-emulation) BGP session at a PoP.
    pub fn external_at(&mut self, pop: usize, remote_asn: Asn) -> ExternalHandle {
        // Peer id 1000+ avoids clashing with PoP-indexed ids.
        self.emu
            .add_external_session(self.routers[pop], PeerConfig::new(PeerId(1000), remote_asn))
    }

    /// Does PoP `from` have a route to PoP `to`'s prefix?
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        self.emu
            .daemon(self.routers[from])
            .map(|d| d.loc_rib().get(&self.prefixes[to]).is_some())
            .unwrap_or(false)
    }

    /// Fraction of PoP pairs with full reachability.
    pub fn reachability(&self) -> f64 {
        let n = self.routers.len();
        if n < 2 {
            return 1.0;
        }
        let mut ok = 0usize;
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += 1;
                    if self.reaches(a, b) {
                        ok += 1;
                    }
                }
            }
        }
        ok as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::{hurricane_electric, small_ring};

    #[test]
    fn ring_emulation_converges() {
        let topo = small_ring(6);
        let mut pe = build_from_pops(&topo, 64512, 1);
        pe.converge(200_000);
        assert_eq!(pe.reachability(), 1.0, "all PoPs reach all prefixes");
        // AS paths follow the ring: 0's route to 3 crosses 2 hops.
        let d = pe.emu.daemon(pe.routers[0]).unwrap();
        let r = d.loc_rib().get(&pe.prefixes[3]).unwrap();
        assert_eq!(r.attrs.as_path.hop_count(), 3);
    }

    #[test]
    fn hurricane_electric_emulation_converges_in_8gb() {
        let topo = hurricane_electric();
        let mut pe = build_from_pops(&topo, 64600, 2);
        pe.converge(2_000_000);
        assert_eq!(pe.reachability(), 1.0);
        // The whole 24-PoP backbone fits comfortably in the paper's 8 GB.
        let mem = pe.emu.total_memory();
        assert!(
            mem < 8 * 1024 * 1024 * 1024,
            "memory {mem} exceeds the desktop budget"
        );
        assert_eq!(pe.emu.container_count(), 24);
    }

    #[test]
    fn external_session_at_amsterdam() {
        let topo = hurricane_electric();
        let ams = topo.pop_by_city("Amsterdam").unwrap();
        let mut pe = build_from_pops(&topo, 64600, 3);
        let h = pe.external_at(ams, Asn(47065));
        pe.converge(2_000_000);
        // The Amsterdam router tried to open the external session.
        let out = pe.emu.drain_external(h);
        assert!(!out.is_empty());
    }

    #[test]
    #[should_panic(expected = "private")]
    fn public_base_asn_is_rejected() {
        let topo = small_ring(3);
        build_from_pops(&topo, 3356, 1);
    }
}
