//! Property tests for the MRT codec: arbitrary update feeds — IPv4 and
//! IPv6 NLRI, with and without ADD-PATH — must round-trip bitwise
//! through encode → decode → re-encode.

use peering_bgp::wire::WireConfig;
use peering_bgp::{AsPath, BgpMessage, Community, Nlri, Origin, PathAttributes, UpdateMessage};
use peering_collector::mrt::{decode_all, Bgp4mpMessage, MrtRecord};
use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix, SimTime};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::collection::vec((1u32..400_000).prop_map(Asn), 0..8),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(|(path, nh, med, local_pref, communities)| {
            let mut attrs = PathAttributes {
                origin: Origin::Igp,
                as_path: AsPath::from_asns(&path),
                next_hop: Ipv4Addr::from(nh),
                med,
                local_pref,
                atomic_aggregate: false,
                aggregator: None,
                communities: Vec::new(),
            };
            for c in communities {
                attrs.add_community(Community(c));
            }
            attrs
        })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::V4(Ipv4Net::new(Ipv4Addr::from(a), l))),
        (any::<u64>(), any::<u64>(), 0u8..=128).prop_map(|(hi, lo, l)| {
            let addr = (u128::from(hi) << 64) | u128::from(lo);
            Prefix::V6(Ipv6Net::new(Ipv6Addr::from(addr), l))
        }),
    ]
}

fn arb_nlri(add_path: bool) -> impl Strategy<Value = Nlri> {
    (arb_prefix(), any::<u32>()).prop_map(move |(p, id)| {
        if add_path {
            Nlri::with_path_id(p, id)
        } else {
            Nlri::plain(p)
        }
    })
}

fn arb_update(add_path: bool) -> impl Strategy<Value = UpdateMessage> {
    (
        proptest::collection::vec(arb_nlri(add_path), 0..8),
        proptest::collection::vec(arb_nlri(add_path), 1..8),
        arb_attrs(),
    )
        .prop_map(|(withdrawn, announced, attrs)| UpdateMessage {
            withdrawn,
            attrs: Some(Arc::new(attrs)),
            announced,
            trace: None,
        })
}

/// Canonicalize NLRI grouping the way the wire format does: v6 reach
/// rides MP_REACH (decoded before the classic v4 NLRI field at the end
/// of the message), v6 withdrawals ride MP_UNREACH (decoded after the
/// classic withdrawn field). Family-stable, order-preserving within a
/// family — exactly what one encode/decode pass normalizes to.
fn canon(m: &Bgp4mpMessage) -> Bgp4mpMessage {
    let mut out = m.clone();
    if let BgpMessage::Update(u) = &mut out.msg {
        let (v6a, v4a): (Vec<Nlri>, Vec<Nlri>) =
            u.announced.drain(..).partition(|n| !n.prefix.is_v4());
        u.announced = v6a.into_iter().chain(v4a).collect();
        let (v4w, v6w): (Vec<Nlri>, Vec<Nlri>) =
            u.withdrawn.drain(..).partition(|n| n.prefix.is_v4());
        u.withdrawn = v4w.into_iter().chain(v6w).collect();
    }
    out
}

/// A whole feed: sim-times ascending, a neighbor ASN per message.
fn arb_feed(add_path: bool) -> impl Strategy<Value = Vec<Bgp4mpMessage>> {
    proptest::collection::vec(
        (
            0u64..4_000_000_000_000u64, // micros; seconds fit u32
            (1u32..400_000).prop_map(Asn),
            (1u32..400_000).prop_map(Asn),
            any::<u32>(),
            any::<u32>(),
            arb_update(add_path),
        ),
        0..10,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(
                |(us, peer_asn, local_asn, pip, lip, update)| Bgp4mpMessage {
                    time: SimTime::from_micros(us),
                    peer_asn,
                    local_asn,
                    peer_ip: Ipv4Addr::from(pip),
                    local_ip: Ipv4Addr::from(lip),
                    msg: BgpMessage::Update(update),
                },
            )
            .collect()
    })
}

proptest! {
    /// Raw record framing is the identity, whatever the body bytes.
    #[test]
    fn raw_record_framing_roundtrips(
        ts in any::<u32>(),
        rtype in any::<u16>(),
        subtype in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let rec = MrtRecord { timestamp_s: ts, rtype, subtype, body };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let (back, used) = MrtRecord::decode(&buf).expect("decode");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, rec);
    }

    /// An arbitrary feed archives and comes back bitwise identical:
    /// encode → decode → re-encode yields the same bytes, and the
    /// decoded messages equal the originals (times, ASNs, updates).
    #[test]
    fn feed_archives_roundtrip_bitwise(feed in arb_feed(false)) {
        let cfg = WireConfig::default();
        let mut archive = Vec::new();
        let mut kept = Vec::new();
        for m in &feed {
            // Oversized updates are a legitimate encode error; skip.
            if let Ok(rec) = m.to_record(cfg) {
                rec.encode(&mut archive);
                kept.push(m.clone());
            }
        }
        let records = decode_all(&archive).expect("well-formed archive");
        prop_assert_eq!(records.len(), kept.len());
        let mut reencoded = Vec::new();
        for (rec, original) in records.iter().zip(&kept) {
            let m = Bgp4mpMessage::from_record(rec, cfg).expect("decode");
            prop_assert_eq!(canon(&m), canon(original));
            m.to_record(cfg).expect("re-encode").encode(&mut reencoded);
        }
        prop_assert_eq!(reencoded, archive, "re-encode must be bitwise identical");
    }

    /// Same law with ADD-PATH in effect: path ids on v4 and v6 NLRI
    /// survive the archive bitwise.
    #[test]
    fn add_path_feed_archives_roundtrip_bitwise(feed in arb_feed(true)) {
        let cfg = WireConfig { add_path: true };
        let mut archive = Vec::new();
        let mut kept = Vec::new();
        for m in &feed {
            if let Ok(rec) = m.to_record(cfg) {
                rec.encode(&mut archive);
                kept.push(m.clone());
            }
        }
        let records = decode_all(&archive).expect("well-formed archive");
        prop_assert_eq!(records.len(), kept.len());
        let mut reencoded = Vec::new();
        for (rec, original) in records.iter().zip(&kept) {
            let m = Bgp4mpMessage::from_record(rec, cfg).expect("decode");
            prop_assert_eq!(canon(&m), canon(original));
            m.to_record(cfg).expect("re-encode").encode(&mut reencoded);
        }
        prop_assert_eq!(reencoded, archive);
    }

    /// Truncating an archive anywhere strictly inside a record is a
    /// structured error, never a panic or a silent partial decode.
    #[test]
    fn truncated_archives_error_cleanly(feed in arb_feed(false), cut in any::<usize>()) {
        let cfg = WireConfig::default();
        let mut archive = Vec::new();
        for m in &feed {
            if let Ok(rec) = m.to_record(cfg) {
                rec.encode(&mut archive);
            }
        }
        prop_assume!(!archive.is_empty());
        let cut = cut % archive.len();
        if cut == 0 {
            prop_assert!(decode_all(&archive[..0]).expect("empty is fine").is_empty());
        } else {
            // Either the cut lands on a record boundary (fewer records
            // decode cleanly) or decoding reports truncation.
            match decode_all(&archive[..cut]) {
                Ok(records) => {
                    let mut len = 0;
                    for r in &records {
                        len += 12 + r.body.len();
                    }
                    prop_assert_eq!(len, cut, "boundary cut decodes exactly");
                }
                Err(e) => prop_assert!(format!("{e}").contains("truncated")),
            }
        }
    }
}
