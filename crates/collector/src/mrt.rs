//! MRT-style binary archives: the RFC 6396 subset the collector writes.
//!
//! Real route collectors (RouteViews, RIPE RIS — the infrastructure the
//! paper's looking-glass integrations lean on) archive BGP in MRT. This
//! module implements the subset the simulated collector needs, faithfully
//! where it matters and documented where it deviates:
//!
//! * **`BGP4MP_ET` / `BGP4MP_MESSAGE_AS4`** (type 17, subtype 4) for
//!   update feeds: the extended-timestamp variant, because sim-time is
//!   microsecond-granular and the plain header only holds seconds.
//! * **`TABLE_DUMP_V2`** (type 13) for RIB snapshots: `PEER_INDEX_TABLE`
//!   (subtype 1) plus `RIB_IPV4_UNICAST` (subtype 2) and
//!   `RIB_IPV6_UNICAST` (subtype 4).
//!
//! One deliberate deviation: a RIB entry's attribute blob is a complete
//! encoded BGP UPDATE announcing the entry's prefix, not a bare path
//! attribute list. This reuses the wire codec end to end (MP_REACH for
//! v6, ADD-PATH path ids) and keeps the round trip bitwise exact.
//!
//! Everything here is byte-deterministic: encoding the same records in
//! the same order yields the same archive, which `tools/check.sh` pins by
//! `cmp`-ing two seeded runs.

use peering_bgp::wire::{decode_message, encode_message, WireConfig};
use peering_bgp::{BgpError, BgpMessage};
use peering_netsim::{Asn, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// MRT type `BGP4MP_ET` (RFC 6396 §4.4): BGP4MP with an extended
/// timestamp carrying microseconds.
pub const MRT_TYPE_BGP4MP_ET: u16 = 17;
/// BGP4MP subtype `BGP4MP_MESSAGE_AS4` (§4.4.2): 4-byte ASNs.
pub const BGP4MP_MESSAGE_AS4: u16 = 4;
/// MRT type `TABLE_DUMP_V2` (§4.3).
pub const MRT_TYPE_TABLE_DUMP_V2: u16 = 13;
/// TABLE_DUMP_V2 subtype `PEER_INDEX_TABLE` (§4.3.1).
pub const TDV2_PEER_INDEX_TABLE: u16 = 1;
/// TABLE_DUMP_V2 subtype `RIB_IPV4_UNICAST` (§4.3.2).
pub const TDV2_RIB_IPV4_UNICAST: u16 = 2;
/// TABLE_DUMP_V2 subtype `RIB_IPV6_UNICAST` (§4.3.2).
pub const TDV2_RIB_IPV6_UNICAST: u16 = 4;

/// AFI value for IPv4 in the BGP4MP header.
const AFI_IPV4: u16 = 1;

/// Decode failure for an MRT archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// Ran out of bytes mid-record (`what` names the field).
    Truncated(&'static str),
    /// A length field disagrees with the bytes present.
    BadLength(&'static str),
    /// Unexpected (type, subtype) pair for the record being decoded.
    UnexpectedType(u16, u16),
    /// The embedded BGP message failed to decode.
    Bgp(BgpError),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated(what) => write!(f, "truncated MRT record: {what}"),
            MrtError::BadLength(what) => write!(f, "bad MRT length field: {what}"),
            MrtError::UnexpectedType(t, s) => {
                write!(f, "unexpected MRT record type {t} subtype {s}")
            }
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e:?}"),
        }
    }
}

impl std::error::Error for MrtError {}

impl From<BgpError> for MrtError {
    fn from(e: BgpError) -> Self {
        MrtError::Bgp(e)
    }
}

/// One raw MRT record: common header plus opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRecord {
    /// Header timestamp, whole seconds.
    pub timestamp_s: u32,
    /// MRT type.
    pub rtype: u16,
    /// MRT subtype.
    pub subtype: u16,
    /// Record body (for `*_ET` types this includes the leading
    /// microseconds field).
    pub body: Vec<u8>,
}

impl MrtRecord {
    /// Append the record to `out` in wire form.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.timestamp_s.to_be_bytes());
        out.extend_from_slice(&self.rtype.to_be_bytes());
        out.extend_from_slice(&self.subtype.to_be_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Decode one record from the front of `data`, returning it and the
    /// number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(MrtRecord, usize), MrtError> {
        if data.len() < 12 {
            return Err(MrtError::Truncated("common header"));
        }
        let timestamp_s = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        let rtype = u16::from_be_bytes([data[4], data[5]]);
        let subtype = u16::from_be_bytes([data[6], data[7]]);
        let len = u32::from_be_bytes([data[8], data[9], data[10], data[11]]) as usize;
        if data.len() < 12 + len {
            return Err(MrtError::Truncated("record body"));
        }
        Ok((
            MrtRecord {
                timestamp_s,
                rtype,
                subtype,
                body: data[12..12 + len].to_vec(),
            },
            12 + len,
        ))
    }
}

/// Split an archive into its raw records.
pub fn decode_all(mut data: &[u8]) -> Result<Vec<MrtRecord>, MrtError> {
    let mut records = Vec::new();
    while !data.is_empty() {
        let (rec, used) = MrtRecord::decode(data)?;
        data = &data[used..];
        records.push(rec);
    }
    Ok(records)
}

/// A BGP message as heard on one session, stamped with sim-time — the
/// unit of a vantage point's update feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Bgp4mpMessage {
    /// Delivery sim-time at the vantage.
    pub time: SimTime,
    /// ASN of the neighbor the message came from.
    pub peer_asn: Asn,
    /// ASN of the vantage (the collector's host).
    pub local_asn: Asn,
    /// Neighbor address recorded in the header (router id in this sim).
    pub peer_ip: Ipv4Addr,
    /// Vantage address recorded in the header.
    pub local_ip: Ipv4Addr,
    /// The BGP message itself.
    pub msg: BgpMessage,
}

impl Bgp4mpMessage {
    /// Encode as a `BGP4MP_ET` / `BGP4MP_MESSAGE_AS4` record.
    pub fn to_record(&self, cfg: WireConfig) -> Result<MrtRecord, BgpError> {
        let micros = self.time.as_micros();
        let mut body = Vec::new();
        body.extend_from_slice(&((micros % 1_000_000) as u32).to_be_bytes());
        body.extend_from_slice(&self.peer_asn.0.to_be_bytes());
        body.extend_from_slice(&self.local_asn.0.to_be_bytes());
        body.extend_from_slice(&0u16.to_be_bytes()); // interface index
        body.extend_from_slice(&AFI_IPV4.to_be_bytes());
        body.extend_from_slice(&self.peer_ip.octets());
        body.extend_from_slice(&self.local_ip.octets());
        body.extend_from_slice(&encode_message(&self.msg, cfg)?);
        Ok(MrtRecord {
            timestamp_s: (micros / 1_000_000) as u32,
            rtype: MRT_TYPE_BGP4MP_ET,
            subtype: BGP4MP_MESSAGE_AS4,
            body,
        })
    }

    /// Decode from a raw record (must be `BGP4MP_ET` / `MESSAGE_AS4`).
    pub fn from_record(rec: &MrtRecord, cfg: WireConfig) -> Result<Bgp4mpMessage, MrtError> {
        if rec.rtype != MRT_TYPE_BGP4MP_ET || rec.subtype != BGP4MP_MESSAGE_AS4 {
            return Err(MrtError::UnexpectedType(rec.rtype, rec.subtype));
        }
        let b = &rec.body;
        if b.len() < 24 {
            return Err(MrtError::Truncated("BGP4MP header"));
        }
        let micros = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        if micros >= 1_000_000 {
            return Err(MrtError::BadLength("microseconds"));
        }
        let peer_asn = Asn(u32::from_be_bytes([b[4], b[5], b[6], b[7]]));
        let local_asn = Asn(u32::from_be_bytes([b[8], b[9], b[10], b[11]]));
        // Bytes 12..14: interface index; 14..16: AFI (always v4 here).
        let afi = u16::from_be_bytes([b[14], b[15]]);
        if afi != AFI_IPV4 {
            return Err(MrtError::UnexpectedType(rec.rtype, afi));
        }
        let peer_ip = Ipv4Addr::new(b[16], b[17], b[18], b[19]);
        let local_ip = Ipv4Addr::new(b[20], b[21], b[22], b[23]);
        let (msg, used) = decode_message(&b[24..], cfg)?;
        if 24 + used != b.len() {
            return Err(MrtError::BadLength("trailing bytes after BGP message"));
        }
        Ok(Bgp4mpMessage {
            time: SimTime::from_micros(u64::from(rec.timestamp_s) * 1_000_000 + u64::from(micros)),
            peer_asn,
            local_asn,
            peer_ip,
            local_ip,
            msg,
        })
    }
}

/// One neighbor in the peer index table heading a RIB dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// Neighbor's BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Neighbor's address (router id in this sim).
    pub ip: Ipv4Addr,
    /// Neighbor's ASN.
    pub asn: Asn,
}

/// The `PEER_INDEX_TABLE` record: who the RIB entries refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// Collector's BGP identifier.
    pub collector_id: Ipv4Addr,
    /// Free-form view name (the vantage label).
    pub view_name: String,
    /// Indexed neighbors; RIB entries point into this list.
    pub peers: Vec<PeerEntry>,
}

/// Peer type flags: AS number is 4 bytes, address is IPv4.
const PEER_TYPE_AS4_V4: u8 = 0x02;

impl PeerIndexTable {
    /// Encode as a `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` record stamped
    /// with `time` (seconds resolution, as the RFC header allows).
    pub fn to_record(&self, time: SimTime) -> MrtRecord {
        let mut body = Vec::new();
        body.extend_from_slice(&self.collector_id.octets());
        body.extend_from_slice(&(self.view_name.len() as u16).to_be_bytes());
        body.extend_from_slice(self.view_name.as_bytes());
        body.extend_from_slice(&(self.peers.len() as u16).to_be_bytes());
        for p in &self.peers {
            body.push(PEER_TYPE_AS4_V4);
            body.extend_from_slice(&p.bgp_id.octets());
            body.extend_from_slice(&p.ip.octets());
            body.extend_from_slice(&p.asn.0.to_be_bytes());
        }
        MrtRecord {
            timestamp_s: (time.as_micros() / 1_000_000) as u32,
            rtype: MRT_TYPE_TABLE_DUMP_V2,
            subtype: TDV2_PEER_INDEX_TABLE,
            body,
        }
    }

    /// Decode from a raw record.
    pub fn from_record(rec: &MrtRecord) -> Result<PeerIndexTable, MrtError> {
        if rec.rtype != MRT_TYPE_TABLE_DUMP_V2 || rec.subtype != TDV2_PEER_INDEX_TABLE {
            return Err(MrtError::UnexpectedType(rec.rtype, rec.subtype));
        }
        let b = &rec.body;
        if b.len() < 6 {
            return Err(MrtError::Truncated("peer index header"));
        }
        let collector_id = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let name_len = u16::from_be_bytes([b[4], b[5]]) as usize;
        if b.len() < 6 + name_len + 2 {
            return Err(MrtError::Truncated("view name"));
        }
        let view_name = String::from_utf8(b[6..6 + name_len].to_vec())
            .map_err(|_| MrtError::BadLength("view name not UTF-8"))?;
        let mut off = 6 + name_len;
        let count = u16::from_be_bytes([b[off], b[off + 1]]) as usize;
        off += 2;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            if b.len() < off + 13 {
                return Err(MrtError::Truncated("peer entry"));
            }
            if b[off] != PEER_TYPE_AS4_V4 {
                return Err(MrtError::BadLength("unsupported peer type"));
            }
            let bgp_id = Ipv4Addr::new(b[off + 1], b[off + 2], b[off + 3], b[off + 4]);
            let ip = Ipv4Addr::new(b[off + 5], b[off + 6], b[off + 7], b[off + 8]);
            let asn = Asn(u32::from_be_bytes([
                b[off + 9],
                b[off + 10],
                b[off + 11],
                b[off + 12],
            ]));
            peers.push(PeerEntry { bgp_id, ip, asn });
            off += 13;
        }
        if off != b.len() {
            return Err(MrtError::BadLength("trailing bytes after peer entries"));
        }
        Ok(PeerIndexTable {
            collector_id,
            view_name,
            peers,
        })
    }
}

/// One path in a RIB dump entry. The `update` blob is a complete encoded
/// BGP UPDATE announcing the entry's prefix with the path's attributes
/// (the module-level deviation note explains why).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibPath {
    /// Index into the preceding [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the path was learned, whole sim-seconds (RFC field width).
    pub originated_s: u32,
    /// Encoded UPDATE carrying the path's attributes and NLRI.
    pub update: Vec<u8>,
}

/// One `RIB_IPV4_UNICAST` / `RIB_IPV6_UNICAST` record: every path the
/// vantage holds for one prefix at dump time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntryRecord {
    /// True for `RIB_IPV6_UNICAST`.
    pub v6: bool,
    /// Position of this record in the dump sequence.
    pub seq: u32,
    /// The paths, in deterministic (peer index, path id) order.
    pub paths: Vec<RibPath>,
}

impl RibEntryRecord {
    /// Encode, stamped with `time` (seconds resolution).
    ///
    /// Deviation from §4.3.2: the per-prefix header is carried inside
    /// each path's embedded UPDATE, so the record goes straight from the
    /// sequence number to the entry count.
    pub fn to_record(&self, time: SimTime) -> MrtRecord {
        let mut body = Vec::new();
        body.extend_from_slice(&self.seq.to_be_bytes());
        body.extend_from_slice(&(self.paths.len() as u16).to_be_bytes());
        for p in &self.paths {
            body.extend_from_slice(&p.peer_index.to_be_bytes());
            body.extend_from_slice(&p.originated_s.to_be_bytes());
            body.extend_from_slice(&(p.update.len() as u16).to_be_bytes());
            body.extend_from_slice(&p.update);
        }
        MrtRecord {
            timestamp_s: (time.as_micros() / 1_000_000) as u32,
            rtype: MRT_TYPE_TABLE_DUMP_V2,
            subtype: if self.v6 {
                TDV2_RIB_IPV6_UNICAST
            } else {
                TDV2_RIB_IPV4_UNICAST
            },
            body,
        }
    }

    /// Decode from a raw record.
    pub fn from_record(rec: &MrtRecord) -> Result<RibEntryRecord, MrtError> {
        let v6 = match (rec.rtype, rec.subtype) {
            (MRT_TYPE_TABLE_DUMP_V2, TDV2_RIB_IPV4_UNICAST) => false,
            (MRT_TYPE_TABLE_DUMP_V2, TDV2_RIB_IPV6_UNICAST) => true,
            (t, s) => return Err(MrtError::UnexpectedType(t, s)),
        };
        let b = &rec.body;
        if b.len() < 6 {
            return Err(MrtError::Truncated("RIB entry header"));
        }
        let seq = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let count = u16::from_be_bytes([b[4], b[5]]) as usize;
        let mut off = 6;
        let mut paths = Vec::with_capacity(count);
        for _ in 0..count {
            if b.len() < off + 8 {
                return Err(MrtError::Truncated("RIB path header"));
            }
            let peer_index = u16::from_be_bytes([b[off], b[off + 1]]);
            let originated_s = u32::from_be_bytes([b[off + 2], b[off + 3], b[off + 4], b[off + 5]]);
            let len = u16::from_be_bytes([b[off + 6], b[off + 7]]) as usize;
            off += 8;
            if b.len() < off + len {
                return Err(MrtError::Truncated("RIB path update"));
            }
            paths.push(RibPath {
                peer_index,
                originated_s,
                update: b[off..off + len].to_vec(),
            });
            off += len;
        }
        if off != b.len() {
            return Err(MrtError::BadLength("trailing bytes after RIB paths"));
        }
        Ok(RibEntryRecord { v6, seq, paths })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{Nlri, PathAttributes, UpdateMessage};
    use peering_netsim::Prefix;
    use std::sync::Arc;

    fn sample_update() -> BgpMessage {
        let attrs = Arc::new(PathAttributes::originate(Ipv4Addr::new(10, 0, 0, 1)));
        BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec![Nlri::plain(Prefix::v4(10, 60, 0, 0, 24))],
        ))
    }

    #[test]
    fn raw_record_roundtrips() {
        let rec = MrtRecord {
            timestamp_s: 1234,
            rtype: MRT_TYPE_BGP4MP_ET,
            subtype: BGP4MP_MESSAGE_AS4,
            body: vec![1, 2, 3, 4, 5],
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let (back, used) = MrtRecord::decode(&buf).expect("decode");
        assert_eq!(used, buf.len());
        assert_eq!(back, rec);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let rec = MrtRecord {
            timestamp_s: 0,
            rtype: 13,
            subtype: 1,
            body: vec![0; 16],
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(
            MrtRecord::decode(&buf[..buf.len() - 1]),
            Err(MrtError::Truncated("record body"))
        );
        assert_eq!(
            MrtRecord::decode(&buf[..8]),
            Err(MrtError::Truncated("common header"))
        );
    }

    #[test]
    fn bgp4mp_roundtrips_with_microsecond_time() {
        let m = Bgp4mpMessage {
            time: SimTime::from_micros(12_345_678_901),
            peer_asn: Asn(65001),
            local_asn: Asn(65002),
            peer_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_ip: Ipv4Addr::new(10, 0, 0, 2),
            msg: sample_update(),
        };
        let cfg = WireConfig::default();
        let rec = m.to_record(cfg).expect("encode");
        assert_eq!(rec.timestamp_s, 12_345);
        let back = Bgp4mpMessage::from_record(&rec, cfg).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn peer_index_table_roundtrips() {
        let t = PeerIndexTable {
            collector_id: Ipv4Addr::new(192, 0, 2, 1),
            view_name: "as65001".to_string(),
            peers: vec![
                PeerEntry {
                    bgp_id: Ipv4Addr::new(10, 0, 0, 1),
                    ip: Ipv4Addr::new(10, 0, 0, 1),
                    asn: Asn(65002),
                },
                PeerEntry {
                    bgp_id: Ipv4Addr::new(10, 0, 0, 2),
                    ip: Ipv4Addr::new(10, 0, 0, 2),
                    asn: Asn(65003),
                },
            ],
        };
        let rec = t.to_record(SimTime::from_secs(900));
        assert_eq!(rec.timestamp_s, 900);
        assert_eq!(PeerIndexTable::from_record(&rec), Ok(t));
    }

    #[test]
    fn rib_entry_roundtrips() {
        let cfg = WireConfig::default();
        let update = encode_message(&sample_update(), cfg).expect("encode update");
        let rec = RibEntryRecord {
            v6: false,
            seq: 7,
            paths: vec![RibPath {
                peer_index: 1,
                originated_s: 42,
                update,
            }],
        };
        let raw = rec.to_record(SimTime::from_secs(900));
        assert_eq!(RibEntryRecord::from_record(&raw), Ok(rec));
    }

    #[test]
    fn decode_all_splits_an_archive() {
        let cfg = WireConfig::default();
        let m = Bgp4mpMessage {
            time: SimTime::from_secs(1),
            peer_asn: Asn(65001),
            local_asn: Asn(65002),
            peer_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_ip: Ipv4Addr::new(10, 0, 0, 2),
            msg: sample_update(),
        };
        let mut buf = Vec::new();
        m.to_record(cfg).expect("encode").encode(&mut buf);
        m.to_record(cfg).expect("encode").encode(&mut buf);
        let records = decode_all(&buf).expect("split");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], records[1]);
    }
}
