//! Propagation DAG reconstruction: from a provenance record stream to
//! the causal story of one routing change.
//!
//! Every hop in the DAG carries the three things an operator debugging
//! BGP propagation actually wants: the sim-timestamp the event happened,
//! the AS path as seen at that hop, and the import/export verdict (was
//! it accepted, re-exported, or filtered — and why). Export evaluations
//! repeat whenever a speaker reconsiders, so hops are deduplicated by
//! (node, neighbor, direction, verdict), keeping the earliest sighting.

use peering_bgp::{ProvenanceEvent, ProvenanceRecord};
use peering_netsim::{Asn, Prefix, SimTime, TraceId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Which side of a speaker a hop was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HopDirection {
    /// Heard from `neighbor` and run through import processing.
    Import,
    /// Evaluated for export toward `neighbor`.
    Export,
    /// A withdrawal heard from `neighbor`.
    WithdrawIn,
    /// A withdrawal sent toward `neighbor`.
    WithdrawOut,
}

/// One observed hop of a routing change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagHop {
    /// The AS that observed the event.
    pub node: Asn,
    /// The neighbor on the other end (sender for imports, receiver for
    /// exports).
    pub neighbor: Asn,
    /// Import or export side.
    pub direction: HopDirection,
    /// Sim-time of the observation (delivery time for imports).
    pub time: SimTime,
    /// AS path at this hop (as heard on import, as sent on export;
    /// empty for withdrawals).
    pub as_path: Vec<Asn>,
    /// Import/export verdict, kebab-case (`accepted`, `exported`,
    /// `split-horizon`, ...; `withdraw` for withdrawal hops).
    pub verdict: String,
}

/// The reconstructed propagation DAG of one trace id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationDag {
    /// The routing change this DAG reconstructs.
    pub trace: TraceId,
    /// The prefix it concerned.
    pub prefix: Prefix,
    /// The AS that originated it.
    pub origin: Asn,
    /// When it was originated.
    pub originated_at: SimTime,
    /// True if the change was a withdrawal.
    pub withdraw: bool,
    /// Every deduplicated hop, ordered by (time, node, neighbor).
    pub hops: Vec<DagHop>,
}

/// Trace ids originated for `prefix`, in origination order.
pub fn traces_for_prefix(records: &[ProvenanceRecord], prefix: Prefix) -> Vec<TraceId> {
    records
        .iter()
        .filter_map(|r| match &r.event {
            ProvenanceEvent::Originated {
                prefix: p, trace, ..
            } if *p == prefix => Some(*trace),
            _ => None,
        })
        .collect()
}

/// Reconstruct the propagation DAG of `trace` from a record stream.
/// Returns `None` when no origination with that id was recorded.
pub fn build_dag(records: &[ProvenanceRecord], trace: TraceId) -> Option<PropagationDag> {
    let (origin_rec, prefix, withdraw) = records.iter().find_map(|r| match &r.event {
        ProvenanceEvent::Originated {
            prefix,
            trace: t,
            withdraw,
        } if *t == trace => Some((r, *prefix, *withdraw)),
        _ => None,
    })?;

    // Dedup key → earliest hop. Export evaluation re-runs on every
    // reconsideration; only the first sighting of each (node, neighbor,
    // direction, verdict) is causally interesting.
    let mut hops: BTreeMap<(Asn, Asn, HopDirection, String), DagHop> = BTreeMap::new();
    let mut keep = |hop: DagHop| {
        let key = (hop.node, hop.neighbor, hop.direction, hop.verdict.clone());
        let entry = hops.entry(key).or_insert_with(|| hop.clone());
        if hop.time < entry.time {
            *entry = hop;
        }
    };

    for r in records {
        match &r.event {
            ProvenanceEvent::Imported {
                from_asn,
                prefix: p,
                trace: t,
                as_path,
                verdict,
                ..
            } if *t == Some(trace) && *p == prefix => keep(DagHop {
                node: r.node_asn,
                neighbor: *from_asn,
                direction: HopDirection::Import,
                time: r.time,
                as_path: as_path.clone(),
                verdict: verdict.to_string(),
            }),
            ProvenanceEvent::Exported {
                to_asn,
                prefix: p,
                trace: t,
                as_path,
                verdict,
                ..
            } if *t == Some(trace) && *p == prefix => keep(DagHop {
                node: r.node_asn,
                neighbor: *to_asn,
                direction: HopDirection::Export,
                time: r.time,
                as_path: as_path.clone(),
                verdict: verdict.to_string(),
            }),
            ProvenanceEvent::WithdrawReceived {
                from_asn,
                prefix: p,
                trace: t,
                ..
            } if *t == Some(trace) && *p == prefix => keep(DagHop {
                node: r.node_asn,
                neighbor: *from_asn,
                direction: HopDirection::WithdrawIn,
                time: r.time,
                as_path: Vec::new(),
                verdict: "withdraw".to_string(),
            }),
            ProvenanceEvent::WithdrawSent {
                to_asn,
                prefix: p,
                trace: t,
                ..
            } if *t == Some(trace) && *p == prefix => keep(DagHop {
                node: r.node_asn,
                neighbor: *to_asn,
                direction: HopDirection::WithdrawOut,
                time: r.time,
                as_path: Vec::new(),
                verdict: "withdraw".to_string(),
            }),
            _ => {}
        }
    }

    let mut hops: Vec<DagHop> = hops.into_values().collect();
    hops.sort_by(|a, b| {
        (a.time, a.node, a.neighbor, a.direction).cmp(&(b.time, b.node, b.neighbor, b.direction))
    });
    Some(PropagationDag {
        trace,
        prefix,
        origin: origin_rec.node_asn,
        originated_at: origin_rec.time,
        withdraw,
        hops,
    })
}

impl PropagationDag {
    /// Hops observed at `node`, in DAG order.
    pub fn hops_at(&self, node: Asn) -> impl Iterator<Item = &DagHop> {
        self.hops.iter().filter(move |h| h.node == node)
    }

    /// The last sim-time any hop was observed (origination time when the
    /// change never left the origin).
    pub fn last_activity(&self) -> SimTime {
        self.hops
            .iter()
            .map(|h| h.time)
            .max()
            .unwrap_or(self.originated_at)
    }

    /// Render the DAG as an indented propagation tree rooted at the
    /// origin. Exported edges recurse into the receiving AS; filtered
    /// edges render as terminal annotations. Every line carries the
    /// sim-timestamp, AS path, and verdict.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let kind = if self.withdraw {
            "withdraw"
        } else {
            "announce"
        };
        let _ = writeln!(
            out,
            "{} {} trace {} origin AS{} @ {}ms",
            self.prefix,
            kind,
            self.trace,
            self.origin.0,
            self.originated_at.as_millis()
        );
        let mut visited = BTreeSet::new();
        visited.insert(self.origin);
        self.render_node(&mut out, self.origin, 1, &mut visited);
        out
    }

    fn render_node(&self, out: &mut String, node: Asn, depth: usize, visited: &mut BTreeSet<Asn>) {
        let indent = "  ".repeat(depth);
        let outbound: Vec<&DagHop> = self
            .hops_at(node)
            .filter(|h| {
                matches!(
                    h.direction,
                    HopDirection::Export | HopDirection::WithdrawOut
                )
            })
            .collect();
        for h in outbound {
            let _ = writeln!(
                out,
                "{indent}-> AS{} @ {}ms path {} {}",
                h.neighbor.0,
                h.time.as_millis(),
                render_path(&h.as_path),
                h.verdict
            );
            if h.verdict != "exported" && h.verdict != "withdraw" {
                continue; // filtered: the message never left this AS
            }
            // The matching inbound hop at the receiver, if it arrived.
            let inbound = self.hops.iter().find(|i| {
                i.node == h.neighbor
                    && i.neighbor == node
                    && matches!(i.direction, HopDirection::Import | HopDirection::WithdrawIn)
            });
            if let Some(i) = inbound {
                let _ = writeln!(
                    out,
                    "{indent}   AS{} heard @ {}ms path {} {}",
                    i.node.0,
                    i.time.as_millis(),
                    render_path(&i.as_path),
                    i.verdict
                );
                let propagates = i.verdict == "accepted" || i.verdict == "withdraw";
                if propagates && visited.insert(h.neighbor) {
                    self.render_node(out, h.neighbor, depth + 1, visited);
                }
            }
        }
    }
}

/// `[65001 65002]`-style AS path rendering (`[]` for withdrawals).
pub fn render_path(path: &[Asn]) -> String {
    let mut s = String::from("[");
    for (i, asn) in path.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let _ = write!(s, "{}", asn.0);
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{ExportVerdict, ImportVerdict, PeerId};

    fn rec(time_ms: u64, node: u32, event: ProvenanceEvent) -> ProvenanceRecord {
        ProvenanceRecord {
            time: SimTime::from_millis(time_ms),
            node_asn: Asn(node),
            event,
        }
    }

    fn sample_records() -> (Vec<ProvenanceRecord>, TraceId, Prefix) {
        let trace = TraceId::new(65001, 0);
        let prefix = Prefix::v4(10, 60, 0, 0, 24);
        let records = vec![
            rec(
                0,
                65001,
                ProvenanceEvent::Originated {
                    prefix,
                    trace,
                    withdraw: false,
                },
            ),
            rec(
                0,
                65001,
                ProvenanceEvent::Exported {
                    to_peer: PeerId(0),
                    to_asn: Asn(65002),
                    prefix,
                    trace: Some(trace),
                    as_path: vec![Asn(65001)],
                    verdict: ExportVerdict::Exported,
                },
            ),
            rec(
                40,
                65002,
                ProvenanceEvent::Imported {
                    from_peer: PeerId(0),
                    from_asn: Asn(65001),
                    prefix,
                    trace: Some(trace),
                    as_path: vec![Asn(65001)],
                    verdict: ImportVerdict::Accepted,
                },
            ),
            // Split horizon back toward the origin, evaluated twice —
            // must dedupe to one hop at the earliest time.
            rec(
                40,
                65002,
                ProvenanceEvent::Exported {
                    to_peer: PeerId(0),
                    to_asn: Asn(65001),
                    prefix,
                    trace: Some(trace),
                    as_path: vec![Asn(65002), Asn(65001)],
                    verdict: ExportVerdict::SplitHorizon,
                },
            ),
            rec(
                90,
                65002,
                ProvenanceEvent::Exported {
                    to_peer: PeerId(0),
                    to_asn: Asn(65001),
                    prefix,
                    trace: Some(trace),
                    as_path: vec![Asn(65002), Asn(65001)],
                    verdict: ExportVerdict::SplitHorizon,
                },
            ),
        ];
        (records, trace, prefix)
    }

    #[test]
    fn builds_and_dedupes_hops() {
        let (records, trace, prefix) = sample_records();
        let dag = build_dag(&records, trace).expect("dag");
        assert_eq!(dag.prefix, prefix);
        assert_eq!(dag.origin, Asn(65001));
        assert!(!dag.withdraw);
        // Export + import + one deduped split-horizon hop.
        assert_eq!(dag.hops.len(), 3);
        let sh = dag
            .hops
            .iter()
            .find(|h| h.verdict == "split-horizon")
            .expect("split-horizon hop");
        assert_eq!(sh.time, SimTime::from_millis(40), "earliest kept");
        assert_eq!(dag.last_activity(), SimTime::from_millis(40));
    }

    #[test]
    fn unknown_trace_builds_nothing() {
        let (records, _, _) = sample_records();
        assert!(build_dag(&records, TraceId::new(65009, 3)).is_none());
    }

    #[test]
    fn traces_index_by_prefix() {
        let (records, trace, prefix) = sample_records();
        assert_eq!(traces_for_prefix(&records, prefix), vec![trace]);
        assert!(traces_for_prefix(&records, Prefix::v4(10, 99, 0, 0, 24)).is_empty());
    }

    #[test]
    fn tree_renders_every_hop_with_time_path_verdict() {
        let (records, trace, _) = sample_records();
        let dag = build_dag(&records, trace).expect("dag");
        let tree = dag.render_tree();
        assert!(tree.contains("10.60.0.0/24 announce trace t65001-0 origin AS65001 @ 0ms"));
        assert!(tree.contains("-> AS65002 @ 0ms path [65001] exported"));
        assert!(tree.contains("AS65002 heard @ 40ms path [65001] accepted"));
        assert!(tree.contains("-> AS65001 @ 40ms path [65002 65001] split-horizon"));
    }
}
