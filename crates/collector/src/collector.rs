//! The route collector: vantage-point archives over a provenance stream.
//!
//! A [`Collector`] plays the role RouteViews and RIPE RIS play for the
//! real Internet: designated vantage ASes record the full BGP update
//! feed they hear, plus periodic RIB snapshots, in MRT form. Here the
//! feed comes from the shared [`ProvenanceLog`] every speaker in an
//! emulation writes into, so attaching a collector is one call and the
//! archive is exactly what the vantage heard, delivery-ordered.
//!
//! Attachment is observational: speakers mint trace ids whether or not a
//! collector listens, so collector-backed runs converge bit-identically
//! to bare runs (the workloads crate pins this).

use crate::mrt::{Bgp4mpMessage, MrtError, PeerEntry, PeerIndexTable, RibEntryRecord, RibPath};
use peering_bgp::wire::{encode_message, WireConfig};
use peering_bgp::{
    BgpMessage, Nlri, PeerId, ProvenanceEvent, ProvenanceLog, ProvenanceRecord, Route, Speaker,
    UpdateMessage,
};
use peering_emulation::Emulation;
use peering_netsim::{Asn, SimTime};
use peering_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A route collector over one emulation run.
#[derive(Debug, Clone)]
pub struct Collector {
    log: ProvenanceLog,
    telemetry: Telemetry,
    vantages: BTreeSet<Asn>,
    router_ids: BTreeMap<Asn, Ipv4Addr>,
}

impl Collector {
    /// A collector with an enabled provenance log and no vantages yet.
    pub fn new() -> Self {
        Collector {
            log: ProvenanceLog::new(),
            telemetry: Telemetry::disabled(),
            vantages: BTreeSet::new(),
            router_ids: BTreeMap::new(),
        }
    }

    /// Mirror archive-size counters into a telemetry registry.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Designate `asn` as a vantage point (idempotent).
    pub fn add_vantage(&mut self, asn: Asn) -> &mut Self {
        self.vantages.insert(asn);
        self
    }

    /// The designated vantage ASes, ascending.
    pub fn vantages(&self) -> impl Iterator<Item = Asn> + '_ {
        self.vantages.iter().copied()
    }

    /// A handle onto the shared provenance stream (attach it yourself if
    /// not using [`attach`](Self::attach)).
    pub fn log(&self) -> ProvenanceLog {
        self.log.clone()
    }

    /// Wire the collector into an emulation: every hosted daemon starts
    /// writing provenance records into this collector's stream, and the
    /// collector learns each AS's router id for MRT headers.
    pub fn attach(&mut self, emu: &mut Emulation) {
        for idx in 0..emu.container_count() {
            if let Some(d) = emu.daemon(idx) {
                self.router_ids.insert(d.asn(), d.config().router_id);
            }
        }
        emu.set_provenance(self.log.clone());
    }

    /// Every provenance record collected so far, in recording order.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        self.log.records()
    }

    /// The router id recorded for `asn`; synthesized from the ASN when
    /// the collector never saw that speaker (deterministic either way).
    pub fn router_id(&self, asn: Asn) -> Ipv4Addr {
        self.router_ids
            .get(&asn)
            .copied()
            .unwrap_or_else(|| Ipv4Addr::from(asn.0))
    }

    /// The update feed heard at `vantage`: every UPDATE delivered to it,
    /// delivery-ordered, as MRT-ready messages.
    pub fn update_feed(&self, vantage: Asn) -> Vec<Bgp4mpMessage> {
        self.log
            .records()
            .into_iter()
            .filter(|r| r.node_asn == vantage)
            .filter_map(|r| match r.event {
                ProvenanceEvent::Feed {
                    from_asn, update, ..
                } => Some(Bgp4mpMessage {
                    time: r.time,
                    peer_asn: from_asn,
                    local_asn: vantage,
                    peer_ip: self.router_id(from_asn),
                    local_ip: self.router_id(vantage),
                    msg: BgpMessage::Update(update),
                }),
                _ => None,
            })
            .collect()
    }

    /// Encode `vantage`'s update feed as one MRT archive. Byte-
    /// deterministic: same run, same bytes.
    pub fn update_archive(&self, vantage: Asn, cfg: WireConfig) -> Result<Vec<u8>, MrtError> {
        let feed = self.update_feed(vantage);
        let mut out = Vec::new();
        for m in &feed {
            m.to_record(cfg)?.encode(&mut out);
        }
        self.telemetry
            .counter_add("collector.feed.records", feed.len() as u64);
        self.telemetry
            .counter_add("collector.feed.bytes", out.len() as u64);
        Ok(out)
    }

    /// Dump `vantage`'s current tables as a `TABLE_DUMP_V2` archive:
    /// one `PEER_INDEX_TABLE` (self at index 0, then neighbors by peer
    /// id) followed by one RIB record per Loc-RIB prefix.
    pub fn rib_dump(
        &self,
        emu: &Emulation,
        vantage: Asn,
        cfg: WireConfig,
    ) -> Result<Vec<u8>, MrtError> {
        let speaker = find_speaker(emu, vantage)
            .ok_or(MrtError::Truncated("vantage speaker not in emulation"))?;
        let now = emu.now();
        let mut out = Vec::new();

        let mut neighbor_ids: Vec<PeerId> = speaker.peer_ids().collect();
        neighbor_ids.sort();
        let mut peers = vec![PeerEntry {
            bgp_id: self.router_id(vantage),
            ip: self.router_id(vantage),
            asn: vantage,
        }];
        let mut index_of: BTreeMap<PeerId, u16> = BTreeMap::new();
        index_of.insert(PeerId::LOCAL, 0);
        for (i, id) in neighbor_ids.iter().enumerate() {
            let asn = speaker.peer_asn(*id).unwrap_or(Asn(0));
            peers.push(PeerEntry {
                bgp_id: self.router_id(asn),
                ip: self.router_id(asn),
                asn,
            });
            index_of.insert(*id, (i + 1) as u16);
        }
        PeerIndexTable {
            collector_id: self.router_id(vantage),
            view_name: format!("as{}", vantage.0),
            peers,
        }
        .to_record(now)
        .encode(&mut out);

        let mut entries = 0u64;
        // Loc-RIB storage is hash-ordered; the archive must not be.
        let mut routes: Vec<&Route> = speaker.loc_rib().iter().collect();
        routes.sort_by_key(|r| r.prefix);
        for (seq, route) in routes.into_iter().enumerate() {
            let rec = RibEntryRecord {
                v6: !route.prefix.is_v4(),
                seq: seq as u32,
                paths: vec![rib_path(route, &index_of, cfg)?],
            };
            rec.to_record(now).encode(&mut out);
            entries += 1;
        }
        self.telemetry.counter_add("collector.rib.entries", entries);
        self.telemetry
            .counter_add("collector.rib.bytes", out.len() as u64);
        Ok(out)
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// Find the hosted speaker whose ASN is `asn`.
fn find_speaker(emu: &Emulation, asn: Asn) -> Option<&Speaker> {
    (0..emu.container_count())
        .filter_map(|i| emu.daemon(i))
        .find(|d| d.asn() == asn)
}

/// Encode one Loc-RIB route as a RIB dump path.
fn rib_path(
    route: &Route,
    index_of: &BTreeMap<PeerId, u16>,
    cfg: WireConfig,
) -> Result<RibPath, MrtError> {
    let nlri = if cfg.add_path {
        Nlri::with_path_id(route.prefix, route.path_id)
    } else {
        Nlri::plain(route.prefix)
    };
    let update = encode_message(
        &BgpMessage::Update(UpdateMessage::announce(
            Arc::clone(&route.attrs),
            vec![nlri],
        )),
        cfg,
    )?;
    Ok(RibPath {
        peer_index: index_of.get(&route.peer).copied().unwrap_or(0),
        originated_s: (route.learned_at.as_micros() / 1_000_000) as u32,
        update,
    })
}

/// Convenience for bins and tests: the dump timestamp a collector uses
/// for `TABLE_DUMP_V2` records (whole sim-seconds).
pub fn dump_timestamp(now: SimTime) -> u32 {
    (now.as_micros() / 1_000_000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrt::{decode_all, MRT_TYPE_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE};
    use peering_bgp::{ConnectRetryConfig, PeerConfig, Prefix, SpeakerConfig};
    use peering_emulation::Container;
    use peering_netsim::{LinkParams, SimRng};

    /// A 3-node line: r0 — r1 — r2, each originating one prefix.
    fn line_emulation(seed: u64) -> Emulation {
        let mut emu = Emulation::new(SimRng::new(seed));
        let nodes: Vec<usize> = (0..3)
            .map(|i| {
                let retry = SimRng::new(seed).fork(&format!("retry/{i}")).seed();
                emu.add_container(Container::router(
                    &format!("r{i}"),
                    Speaker::new(
                        SpeakerConfig::new(
                            Asn(65001 + i as u32),
                            Ipv4Addr::new(10, 0, 0, 1 + i as u8),
                        )
                        .with_connect_retry(ConnectRetryConfig::new(retry)),
                    ),
                ))
            })
            .collect();
        for (a, b) in [(0usize, 1usize), (1, 2)] {
            emu.link(nodes[a], nodes[b], LinkParams::default());
            emu.connect_bgp(
                nodes[a],
                PeerConfig::new(PeerId(if a == 1 { 1 } else { 0 }), Asn(65001 + b as u32)),
                nodes[b],
                PeerConfig::new(PeerId(0), Asn(65001 + a as u32)).passive(),
            );
        }
        emu.start_all();
        for (i, &n) in nodes.iter().enumerate() {
            emu.originate(n, Prefix::v4(10, 60, i as u8, 0, 24));
        }
        emu
    }

    #[test]
    fn attached_collector_archives_the_vantage_feed() {
        let mut emu = line_emulation(5);
        let mut collector = Collector::new();
        collector.add_vantage(Asn(65003));
        collector.attach(&mut emu);
        emu.run_until_quiet(usize::MAX);

        let feed = collector.update_feed(Asn(65003));
        assert!(!feed.is_empty(), "vantage heard updates");
        // Everything the vantage heard came from its one neighbor.
        assert!(feed.iter().all(|m| m.peer_asn == Asn(65002)));
        assert!(feed
            .iter()
            .all(|m| m.local_ip == Ipv4Addr::new(10, 0, 0, 3)));
        // Delivery-ordered.
        assert!(feed.windows(2).all(|w| w[0].time <= w[1].time));

        let cfg = WireConfig::default();
        let archive = collector.update_archive(Asn(65003), cfg).expect("archive");
        let records = decode_all(&archive).expect("well-formed archive");
        assert_eq!(records.len(), feed.len());
        let back = Bgp4mpMessage::from_record(&records[0], cfg).expect("decode");
        assert_eq!(back, feed[0]);
    }

    #[test]
    fn archives_are_byte_deterministic_across_runs() {
        let build = || {
            let mut emu = line_emulation(5);
            let mut c = Collector::new();
            c.add_vantage(Asn(65001));
            c.attach(&mut emu);
            emu.run_until_quiet(usize::MAX);
            let cfg = WireConfig::default();
            let mut bytes = c.update_archive(Asn(65001), cfg).expect("feed");
            bytes.extend(c.rib_dump(&emu, Asn(65001), cfg).expect("rib"));
            bytes
        };
        assert_eq!(build(), build(), "same seed, same archive bytes");
    }

    #[test]
    fn rib_dump_covers_the_loc_rib() {
        let mut emu = line_emulation(9);
        let mut collector = Collector::new();
        collector.attach(&mut emu);
        emu.run_until_quiet(usize::MAX);

        let cfg = WireConfig::default();
        let dump = collector.rib_dump(&emu, Asn(65002), cfg).expect("dump");
        let records = decode_all(&dump).expect("well-formed dump");
        assert_eq!(records[0].rtype, MRT_TYPE_TABLE_DUMP_V2);
        assert_eq!(records[0].subtype, TDV2_PEER_INDEX_TABLE);
        let table = PeerIndexTable::from_record(&records[0]).expect("peer table");
        assert_eq!(table.view_name, "as65002");
        // Self plus two neighbors.
        assert_eq!(table.peers.len(), 3);
        assert_eq!(table.peers[0].asn, Asn(65002));

        // One RIB record per Loc-RIB prefix (3 originated prefixes).
        let middle = find_speaker(&emu, Asn(65002)).expect("speaker");
        assert_eq!(records.len() - 1, middle.loc_rib().len());
        for rec in &records[1..] {
            let entry = RibEntryRecord::from_record(rec).expect("entry");
            assert_eq!(entry.paths.len(), 1);
            let (msg, _) =
                peering_bgp::wire::decode_message(&entry.paths[0].update, cfg).expect("update");
            assert!(matches!(msg, BgpMessage::Update(_)));
        }
    }

    #[test]
    fn telemetry_counts_archive_sizes() {
        let mut emu = line_emulation(3);
        let telemetry = Telemetry::new();
        let mut collector = Collector::new().with_telemetry(telemetry.clone());
        collector.attach(&mut emu);
        emu.run_until_quiet(usize::MAX);
        let cfg = WireConfig::default();
        let archive = collector.update_archive(Asn(65001), cfg).expect("archive");
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("collector.feed.bytes"), archive.len() as u64);
        assert!(snap.counter("collector.feed.records") > 0);
    }
}
