//! Route collector and looking glass for the simulated Internet.
//!
//! The PEERING testbed gives researchers BGP sessions into the real
//! Internet; understanding what their announcements *did* out there
//! means reading route collectors (RouteViews, RIPE RIS) and looking
//! glasses. This crate closes that loop inside the reproduction:
//!
//! * [`collector::Collector`] attaches to an emulation and archives
//!   designated vantage ASes' update feeds and RIB snapshots in an
//!   MRT-style binary format ([`mrt`], RFC 6396 subset), byte-
//!   deterministic for a fixed seed.
//! * [`dag`] reconstructs the causal propagation DAG of any routing
//!   change from the provenance stream: every hop with its
//!   sim-timestamp, AS path, and import/export verdict.
//! * [`lg::LookingGlass`] (and the `peering-lg` binary) answers
//!   `show route`, `trace`, and `convergence` queries over a run.
//!
//! Collection never perturbs: speakers mint trace ids deterministically
//! whether or not anyone listens, so instrumented runs converge
//! bit-identically to bare ones.

pub mod collector;
pub mod dag;
pub mod lg;
pub mod mrt;

pub use collector::Collector;
pub use dag::{build_dag, traces_for_prefix, DagHop, HopDirection, PropagationDag};
pub use lg::LookingGlass;
pub use mrt::{
    decode_all, Bgp4mpMessage, MrtError, MrtRecord, PeerEntry, PeerIndexTable, RibEntryRecord,
    RibPath,
};
