//! `peering-lg` — a looking glass over the simulated Internet.
//!
//! Builds a small seeded ring of ASes (65001..), runs it to convergence
//! with a route collector attached, and answers one query:
//!
//! ```text
//! peering-lg [--seed N] [--nodes N] show <prefix>
//! peering-lg [--seed N] [--nodes N] trace <prefix>
//! peering-lg [--seed N] [--nodes N] convergence <prefix>
//! ```
//!
//! Node `i` originates `10.60.i.0/24`, so e.g. `trace 10.60.0.0/24`
//! renders the propagation tree of AS65001's announcement. Same seed,
//! same answer, bit for bit.

use peering_bgp::{Asn, ConnectRetryConfig, PeerConfig, PeerId, Prefix, Speaker, SpeakerConfig};
use peering_collector::{Collector, LookingGlass};
use peering_emulation::{Container, Emulation};
use peering_netsim::{LinkParams, SimRng};
use std::net::Ipv4Addr;
use std::process::ExitCode;

const USAGE: &str = "usage: peering-lg [--seed N] [--nodes N] <show|trace|convergence> <prefix>
       (node i originates 10.60.i.0/24; default 5 nodes, seed 42)";

/// Build the demo ring, collector attached, run to convergence.
fn build_ring(nodes: usize, seed: u64) -> (Emulation, Collector) {
    let mut emu = Emulation::new(SimRng::new(seed).fork("lg-ring"));
    let idx: Vec<usize> = (0..nodes)
        .map(|i| {
            let retry = SimRng::new(seed).fork(&format!("retry/{i}")).seed();
            emu.add_container(Container::router(
                &format!("r{i}"),
                Speaker::new(
                    SpeakerConfig::new(
                        Asn(65001 + i as u32),
                        Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
                    )
                    .with_connect_retry(ConnectRetryConfig::new(retry)),
                ),
            ))
        })
        .collect();
    let mut next_peer = vec![0u32; nodes];
    for a in 0..nodes {
        let b = (a + 1) % nodes;
        emu.link(idx[a], idx[b], LinkParams::default());
        let pa = PeerId(next_peer[a]);
        let pb = PeerId(next_peer[b]);
        next_peer[a] += 1;
        next_peer[b] += 1;
        emu.connect_bgp(
            idx[a],
            PeerConfig::new(pa, Asn(65001 + b as u32)),
            idx[b],
            PeerConfig::new(pb, Asn(65001 + a as u32)).passive(),
        );
    }
    let mut collector = Collector::new();
    for i in 0..nodes {
        collector.add_vantage(Asn(65001 + i as u32));
    }
    collector.attach(&mut emu);
    emu.start_all();
    for (i, &n) in idx.iter().enumerate() {
        emu.originate(n, Prefix::v4(10, 60, i as u8, 0, 24));
    }
    emu.run_until_quiet(usize::MAX);
    (emu, collector)
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut nodes = 5usize;
    let mut positional = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs an integer")?;
                if !(2..=200).contains(&nodes) {
                    return Err("--nodes must be in 2..=200".to_string());
                }
            }
            "--help" | "-h" => return Ok(USAGE.to_string()),
            _ => positional.push(a),
        }
    }
    let [command, prefix] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let prefix: Prefix = prefix
        .parse()
        .map_err(|e| format!("bad prefix {prefix:?}: {e}"))?;

    let (emu, collector) = build_ring(nodes, seed);
    let lg = LookingGlass::new(&emu, &collector);
    match command.as_str() {
        "show" => Ok(lg.show_route(prefix)),
        "trace" => Ok(lg.trace(prefix)),
        "convergence" => Ok(lg.convergence(prefix)),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            if !out.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
