//! The looking glass: operator-facing queries over a collected run.
//!
//! PEERING's public face includes looking glasses that let anyone ask
//! "what does the routing system currently believe about this prefix,
//! and how did it come to believe it?". This module answers the same
//! three questions over the simulated Internet:
//!
//! * `show route <prefix>` — what every AS currently installs;
//! * `trace <prefix>` — the propagation tree of the latest change;
//! * `convergence <prefix>` — the full convergence timeline.

use crate::collector::Collector;
use crate::dag::{build_dag, render_path, traces_for_prefix, HopDirection, PropagationDag};
use peering_bgp::{PeerId, Speaker};
use peering_emulation::Emulation;
use peering_netsim::{Asn, Prefix};
use std::fmt::Write as _;

/// Read-only query surface over one emulation plus its collector.
pub struct LookingGlass<'a> {
    emu: &'a Emulation,
    collector: &'a Collector,
}

impl<'a> LookingGlass<'a> {
    /// A looking glass over `emu` as archived by `collector`.
    pub fn new(emu: &'a Emulation, collector: &'a Collector) -> Self {
        LookingGlass { emu, collector }
    }

    fn speakers(&self) -> Vec<&Speaker> {
        let mut v: Vec<&Speaker> = (0..self.emu.container_count())
            .filter_map(|i| self.emu.daemon(i))
            .collect();
        v.sort_by_key(|d| d.asn());
        v
    }

    /// `show route <prefix>`: the installed best path at every AS.
    pub fn show_route(&self, prefix: Prefix) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "show route {prefix}");
        let mut found = 0;
        for d in self.speakers() {
            let Some(route) = d.loc_rib().get(&prefix) else {
                continue;
            };
            found += 1;
            let path: Vec<Asn> = route.attrs.as_path.asns().collect();
            let via = if route.peer == PeerId::LOCAL {
                "local origination".to_string()
            } else {
                match d.peer_asn(route.peer) {
                    Some(asn) => format!("peer AS{}", asn.0),
                    None => format!("peer #{}", route.peer.0),
                }
            };
            let trace = match route.trace {
                Some(t) => format!(" trace {t}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  AS{}: path {} via {} learned @ {}ms{}",
                d.asn().0,
                render_path(&path),
                via,
                route.learned_at.as_millis(),
                trace
            );
        }
        if found == 0 {
            let _ = writeln!(out, "  not installed anywhere");
        }
        out
    }

    /// The propagation DAG of the latest change to `prefix`, if any
    /// origination was collected.
    pub fn latest_dag(&self, prefix: Prefix) -> Option<PropagationDag> {
        let records = self.collector.records();
        let trace = traces_for_prefix(&records, prefix).pop()?;
        build_dag(&records, trace)
    }

    /// `trace <prefix>`: render the latest change's propagation tree.
    pub fn trace(&self, prefix: Prefix) -> String {
        match self.latest_dag(prefix) {
            Some(dag) => dag.render_tree(),
            None => format!("no origination collected for {prefix}\n"),
        }
    }

    /// `convergence <prefix>`: every hop of every change to `prefix`,
    /// merged into one timeline, with a convergence summary.
    pub fn convergence(&self, prefix: Prefix) -> String {
        let records = self.collector.records();
        let traces = traces_for_prefix(&records, prefix);
        if traces.is_empty() {
            return format!("no origination collected for {prefix}\n");
        }
        let mut lines: Vec<(u64, String)> = Vec::new();
        let mut ases = std::collections::BTreeSet::new();
        let mut last_ms = 0u64;
        for trace in &traces {
            let Some(dag) = build_dag(&records, *trace) else {
                continue;
            };
            ases.insert(dag.origin);
            lines.push((
                dag.originated_at.as_millis(),
                format!(
                    "@ {:>7}ms AS{} {} {} trace {}",
                    dag.originated_at.as_millis(),
                    dag.origin.0,
                    if dag.withdraw {
                        "withdraws"
                    } else {
                        "announces"
                    },
                    dag.prefix,
                    trace
                ),
            ));
            for h in &dag.hops {
                ases.insert(h.node);
                let arrow = match h.direction {
                    HopDirection::Import => format!("<- AS{}", h.neighbor.0),
                    HopDirection::Export => format!("-> AS{}", h.neighbor.0),
                    HopDirection::WithdrawIn => format!("wd <- AS{}", h.neighbor.0),
                    HopDirection::WithdrawOut => format!("wd -> AS{}", h.neighbor.0),
                };
                last_ms = last_ms.max(h.time.as_millis());
                lines.push((
                    h.time.as_millis(),
                    format!(
                        "@ {:>7}ms AS{} {} path {} {}",
                        h.time.as_millis(),
                        h.node.0,
                        arrow,
                        render_path(&h.as_path),
                        h.verdict
                    ),
                ));
            }
        }
        lines.sort();
        let mut out = format!("convergence {prefix}\n");
        for (_, line) in &lines {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "converged @ {}ms: {} events across {} ASes, {} change(s)",
            last_ms,
            lines.len(),
            ases.len(),
            traces.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{ConnectRetryConfig, PeerConfig, SpeakerConfig};
    use peering_emulation::Container;
    use peering_netsim::{LinkParams, SimRng};
    use std::net::Ipv4Addr;

    /// r0 — r1 — r2 line; r0 originates, then withdraws and re-announces.
    fn collected_line() -> (Emulation, Collector, Prefix) {
        let mut emu = Emulation::new(SimRng::new(7));
        let nodes: Vec<usize> = (0..3)
            .map(|i| {
                let retry = SimRng::new(7).fork(&format!("retry/{i}")).seed();
                emu.add_container(Container::router(
                    &format!("r{i}"),
                    Speaker::new(
                        SpeakerConfig::new(
                            Asn(65001 + i as u32),
                            Ipv4Addr::new(10, 0, 0, 1 + i as u8),
                        )
                        .with_connect_retry(ConnectRetryConfig::new(retry)),
                    ),
                ))
            })
            .collect();
        for (a, b) in [(0usize, 1usize), (1, 2)] {
            emu.link(nodes[a], nodes[b], LinkParams::default());
            emu.connect_bgp(
                nodes[a],
                PeerConfig::new(PeerId(if a == 1 { 1 } else { 0 }), Asn(65001 + b as u32)),
                nodes[b],
                PeerConfig::new(PeerId(0), Asn(65001 + a as u32)).passive(),
            );
        }
        let mut collector = Collector::new();
        collector.add_vantage(Asn(65003));
        collector.attach(&mut emu);
        emu.start_all();
        let prefix = Prefix::v4(10, 60, 0, 0, 24);
        emu.originate(nodes[0], prefix);
        emu.run_until_quiet(usize::MAX);
        (emu, collector, prefix)
    }

    #[test]
    fn show_route_reports_every_as() {
        let (emu, collector, prefix) = collected_line();
        let lg = LookingGlass::new(&emu, &collector);
        let out = lg.show_route(prefix);
        assert!(out.contains("AS65001: path [] via local origination"));
        assert!(out.contains("AS65002: path [65001] via peer AS65001"));
        assert!(out.contains("AS65003: path [65002 65001] via peer AS65002"));
        assert!(out.contains("trace t65001-0"));
    }

    #[test]
    fn show_route_handles_unknown_prefix() {
        let (emu, collector, _) = collected_line();
        let lg = LookingGlass::new(&emu, &collector);
        let out = lg.show_route(Prefix::v4(10, 99, 0, 0, 24));
        assert!(out.contains("not installed anywhere"));
    }

    #[test]
    fn trace_renders_the_propagation_tree() {
        let (emu, collector, prefix) = collected_line();
        let lg = LookingGlass::new(&emu, &collector);
        let out = lg.trace(prefix);
        assert!(out.contains("10.60.0.0/24 announce trace t65001-0 origin AS65001"));
        assert!(out.contains("exported"));
        assert!(out.contains("accepted"));
        // The far end heard it with the full two-hop path.
        assert!(out.contains("path [65002 65001]"));
    }

    #[test]
    fn convergence_timeline_summarizes() {
        let (emu, collector, prefix) = collected_line();
        let lg = LookingGlass::new(&emu, &collector);
        let out = lg.convergence(prefix);
        assert!(out.contains("AS65001 announces 10.60.0.0/24"));
        assert!(out.contains("converged @"));
        assert!(out.contains("3 ASes"));
    }

    #[test]
    fn unknown_prefix_has_no_trace() {
        let (emu, collector, _) = collected_line();
        let lg = LookingGlass::new(&emu, &collector);
        assert!(lg
            .trace(Prefix::v4(10, 99, 0, 0, 24))
            .contains("no origination collected"));
        assert!(lg
            .convergence(Prefix::v4(10, 99, 0, 0, 24))
            .contains("no origination collected"));
    }
}
