//! Property tests for the topology model: every propagated path must be
//! valley-free, loop-free, and respect poisoning/selective export — over
//! randomly generated Internets.

use peering_netsim::Prefix;
use peering_topology::routing::{propagate, Announcement, RouteClass};
use peering_topology::{cone::customer_cones, AsGraph, AsIdx, Internet, InternetConfig};
use proptest::prelude::*;
use std::collections::HashSet;

/// Classify the relationship step from `a` to `b` along a path
/// (direction of travel is from the adopter toward the origin).
fn step(g: &AsGraph, a: AsIdx, b: AsIdx) -> &'static str {
    if g.providers(a).contains(&b) {
        "up" // a's provider — a learned FROM its provider
    } else if g.customers(a).contains(&b) {
        "down" // a's customer — a learned FROM its customer
    } else if g.peers(a).contains(&b) {
        "peer"
    } else {
        "none"
    }
}

/// Valley-free check on a path from self to origin: reading from the
/// origin outward, the exports must be (customer)* (peer)? (provider)*.
/// Equivalently, reading from self toward origin: the step sequence is
/// up* peer? down* — a route learned from a provider is only re-exported
/// to customers.
fn valley_free(g: &AsGraph, path: &[AsIdx]) -> bool {
    // steps[i] = relation of path[i] to path[i+1] (whom it learned from).
    let steps: Vec<&str> = path.windows(2).map(|w| step(g, w[0], w[1])).collect();
    if steps.contains(&"none") {
        return false;
    }
    // Phase machine: start allowing "down" (learned from customer) after
    // any step; but once we've seen a "down" (customer) step we may not
    // see "peer" or "up" CLOSER to the origin... Careful: walking from
    // self toward origin, the allowed pattern is: any number of "up",
    // then at most one "peer", then any number of "down".
    let mut phase = 0; // 0 = up, 1 = after peer, 2 = down
    for s in steps {
        match (phase, s) {
            (0, "up") => {}
            (0, "peer") => phase = 1,
            (0, "down") | (1, "down") | (2, "down") => phase = 2,
            (1, "peer") | (1, "up") => return false,
            (2, _) => return false,
            _ => return false,
        }
    }
    true
}

fn small_internet(seed: u64) -> Internet {
    Internet::build(InternetConfig::small(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every selected path is loop-free and valley-free, for any origin.
    #[test]
    fn propagation_paths_are_policy_compliant(seed in 1u64..500, origin_pick in any::<u32>()) {
        let net = small_internet(seed);
        let g = &net.graph;
        let origin = AsIdx(origin_pick % g.len() as u32);
        let result = propagate(g, &[Announcement::simple(origin, Prefix::v4(203, 0, 113, 0, 24))]);
        for (u, entry) in result.iter() {
            // Path starts at the holder and ends at the origin.
            prop_assert_eq!(entry.path[0], u);
            prop_assert_eq!(*entry.path.last().unwrap(), origin);
            // Loop freedom.
            let set: HashSet<AsIdx> = entry.path.iter().copied().collect();
            prop_assert_eq!(set.len(), entry.path.len());
            // Valley freedom.
            prop_assert!(valley_free(g, &entry.path), "path {:?}", entry.path);
            // The class matches the first step.
            if entry.path.len() > 1 {
                let s = step(g, entry.path[0], entry.path[1]);
                let expect = match entry.class {
                    RouteClass::Origin => unreachable!("origin has path len 1"),
                    RouteClass::Customer => "down",
                    RouteClass::Peer => "peer",
                    RouteClass::Provider => "up",
                };
                prop_assert_eq!(s, expect);
            } else {
                prop_assert_eq!(entry.class, RouteClass::Origin);
            }
        }
    }

    /// Poisoned ASes never hold or appear on any selected path.
    #[test]
    fn poison_is_respected(seed in 1u64..200, origin_pick in any::<u32>(), poison_pick in any::<u32>()) {
        let net = small_internet(seed);
        let g = &net.graph;
        let origin = AsIdx(origin_pick % g.len() as u32);
        let poisoned = AsIdx(poison_pick % g.len() as u32);
        prop_assume!(poisoned != origin);
        let asn = g.info(poisoned).asn;
        let result = propagate(
            g,
            &[Announcement::simple(origin, Prefix::v4(203, 0, 113, 0, 24)).poisoned(vec![asn])],
        );
        prop_assert!(result.route(poisoned).is_none());
        for (_, entry) in result.iter() {
            prop_assert!(!entry.path.contains(&poisoned));
        }
    }

    /// Selective export: only the selected neighbors (and ASes beyond
    /// them) can hold routes; an empty selection reaches only the origin.
    #[test]
    fn selective_export_is_respected(seed in 1u64..200, origin_pick in any::<u32>()) {
        let net = small_internet(seed);
        let g = &net.graph;
        let origin = AsIdx(origin_pick % g.len() as u32);
        let none = propagate(
            g,
            &[Announcement::simple(origin, Prefix::v4(203, 0, 113, 0, 24)).only_to(vec![])],
        );
        prop_assert_eq!(none.reach_count(), 1, "only the origin itself");
        // Selecting a single neighbor: the next hop from the origin side
        // is always that neighbor.
        if let Some(&first) = g.neighbors(origin).collect::<Vec<_>>().first() {
            let one = propagate(
                g,
                &[Announcement::simple(origin, Prefix::v4(203, 0, 113, 0, 24))
                    .only_to(vec![first])],
            );
            for (u, entry) in one.iter() {
                if u != origin {
                    let n = entry.path.len();
                    prop_assert_eq!(entry.path[n - 2], first);
                }
            }
        }
    }

    /// Propagation reach never *increases* when prepending (it can shift
    /// tie-breaks but a plain announcement reaches everything reachable).
    #[test]
    fn prepending_does_not_extend_reach(seed in 1u64..100, origin_pick in any::<u32>(), n in 1u8..6) {
        let net = small_internet(seed);
        let g = &net.graph;
        let origin = AsIdx(origin_pick % g.len() as u32);
        let plain = propagate(g, &[Announcement::simple(origin, Prefix::v4(1, 2, 3, 0, 24))]);
        let prepended = propagate(
            g,
            &[Announcement::simple(origin, Prefix::v4(1, 2, 3, 0, 24)).prepended(n)],
        );
        prop_assert_eq!(plain.reach_count(), prepended.reach_count());
        // And the prepend inflates every reported length by exactly n.
        for (u, entry) in prepended.iter() {
            let base = plain.route(u).unwrap();
            prop_assert_eq!(entry.len, base.len + n as u32);
        }
    }

    /// Customer cones contain self and are monotone along c2p edges.
    #[test]
    fn cones_are_consistent(seed in 1u64..100) {
        let net = small_internet(seed);
        let g = &net.graph;
        let cones = customer_cones(g);
        for u in g.indices() {
            prop_assert!(cones[u.i()].contains(&u));
            for &c in g.customers(u) {
                // The provider's cone includes the customer's whole cone.
                prop_assert!(cones[c.i()].is_subset(&cones[u.i()]));
            }
        }
    }

    /// Propagation is deterministic for a fixed seed and differs across
    /// graph seeds (sanity of the generator's variety).
    #[test]
    fn propagation_is_deterministic(seed in 1u64..100, origin_pick in any::<u32>()) {
        let net = small_internet(seed);
        let origin = AsIdx(origin_pick % net.graph.len() as u32);
        let ann = Announcement::simple(origin, Prefix::v4(9, 9, 9, 0, 24));
        let a = propagate(&net.graph, std::slice::from_ref(&ann));
        let b = propagate(&net.graph, &[ann]);
        for u in net.graph.indices() {
            prop_assert_eq!(a.route(u), b.route(u));
        }
    }
}
