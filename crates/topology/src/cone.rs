//! Customer cones and AS rank.
//!
//! The paper ranks peers "by the size of their customer cones \[10\]"
//! (CAIDA AS Rank) and reports that PEERING peers with 13 of the top-50
//! and 27 of the top-100 ASes. The cone is also the key to the
//! reachability experiment: ignoring transit, a route learned from peer X
//! covers exactly the prefixes originated inside X's customer cone —
//! that is how "peer routes to 131,000 prefixes" is computed.

use crate::graph::{AsGraph, AsIdx};
use std::collections::BTreeSet;

/// Compute every AS's customer cone (the set of ASes reachable by
/// descending customer edges, including itself).
///
/// Returns a vector indexed by [`AsIdx`]. Cycles in c2p edges (which a
/// well-formed topology should not have) are tolerated: members are
/// accumulated to a fixed point.
pub fn customer_cones(g: &AsGraph) -> Vec<BTreeSet<AsIdx>> {
    let n = g.len();
    let mut cones: Vec<BTreeSet<AsIdx>> = (0..n)
        .map(|i| {
            let mut s = BTreeSet::new();
            s.insert(AsIdx(i as u32));
            s
        })
        .collect();
    // Iterate to fixed point; on a DAG ordered by tiers this converges in
    // few passes (depth of the hierarchy).
    loop {
        let mut changed = false;
        for u in g.indices() {
            let mut additions: Vec<AsIdx> = Vec::new();
            for &c in g.customers(u) {
                for &member in &cones[c.i()] {
                    if !cones[u.i()].contains(&member) {
                        additions.push(member);
                    }
                }
            }
            if !additions.is_empty() {
                changed = true;
                cones[u.i()].extend(additions);
            }
        }
        if !changed {
            break;
        }
    }
    cones
}

/// Cone sizes only (cheaper to keep around).
pub fn cone_sizes(g: &AsGraph) -> Vec<usize> {
    customer_cones(g).iter().map(BTreeSet::len).collect()
}

/// ASes ranked by descending customer-cone size (CAIDA AS Rank style).
/// Ties break by ascending ASN for determinism.
pub fn as_rank(g: &AsGraph) -> Vec<AsIdx> {
    let sizes = cone_sizes(g);
    let mut order: Vec<AsIdx> = g.indices().collect();
    order.sort_by(|a, b| {
        sizes[b.i()]
            .cmp(&sizes[a.i()])
            .then_with(|| g.info(*a).asn.cmp(&g.info(*b).asn))
    });
    order
}

/// The number of *prefixes* originated inside an AS's customer cone.
pub fn cone_prefix_count(g: &AsGraph, cone: &BTreeSet<AsIdx>) -> usize {
    cone.iter().map(|&m| g.info(m).prefixes.len()).sum()
}

/// Union of the customer cones of `peers`: the set of ASes whose prefixes
/// a vantage point can reach via those peers *without transit* —
/// the §4.1 "ignoring transit, routes to ¼ of the Internet" computation.
pub fn peer_reachable_ases(g: &AsGraph, peers: &[AsIdx]) -> BTreeSet<AsIdx> {
    let cones = customer_cones(g);
    let mut union = BTreeSet::new();
    for &p in peers {
        union.extend(cones[p.i()].iter().copied());
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsInfo, AsKind, Relationship};
    use peering_netsim::{Asn, Prefix};

    fn chain() -> (AsGraph, Vec<AsIdx>) {
        // a <- b <- c (c customer of b, b customer of a), d isolated peer.
        let mut g = AsGraph::new();
        let a = g.add_as(AsInfo::new(Asn(1), AsKind::Tier1));
        let b = g.add_as(AsInfo::new(Asn(2), AsKind::Transit));
        let c = g.add_as(AsInfo::new(Asn(3), AsKind::Stub));
        let d = g.add_as(AsInfo::new(Asn(4), AsKind::Content));
        g.add_edge(b, a, Relationship::CustomerToProvider);
        g.add_edge(c, b, Relationship::CustomerToProvider);
        g.add_edge(d, a, Relationship::PeerToPeer);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn cones_are_transitive_down_customer_edges() {
        let (g, ids) = chain();
        let cones = customer_cones(&g);
        assert_eq!(cones[ids[0].i()].len(), 3); // a: {a, b, c}
        assert_eq!(cones[ids[1].i()].len(), 2); // b: {b, c}
        assert_eq!(cones[ids[2].i()].len(), 1); // c: {c}
        assert_eq!(cones[ids[3].i()].len(), 1); // d: {d} (peering doesn't count)
        assert!(cones[ids[0].i()].contains(&ids[2]));
    }

    #[test]
    fn rank_orders_by_cone_size() {
        let (g, ids) = chain();
        let rank = as_rank(&g);
        assert_eq!(rank[0], ids[0]);
        assert_eq!(rank[1], ids[1]);
        // c and d tie at size 1; ASN order breaks the tie (3 before 4).
        assert_eq!(rank[2], ids[2]);
        assert_eq!(rank[3], ids[3]);
    }

    #[test]
    fn cone_prefix_counting() {
        let (mut g, ids) = chain();
        g.info_mut(ids[1])
            .prefixes
            .push(Prefix::v4(10, 0, 0, 0, 16));
        g.info_mut(ids[2])
            .prefixes
            .push(Prefix::v4(10, 1, 0, 0, 16));
        g.info_mut(ids[2])
            .prefixes
            .push(Prefix::v4(10, 2, 0, 0, 16));
        let cones = customer_cones(&g);
        assert_eq!(cone_prefix_count(&g, &cones[ids[0].i()]), 3);
        assert_eq!(cone_prefix_count(&g, &cones[ids[1].i()]), 3);
        assert_eq!(cone_prefix_count(&g, &cones[ids[2].i()]), 2);
        assert_eq!(cone_prefix_count(&g, &cones[ids[3].i()]), 0);
    }

    #[test]
    fn peer_reachability_union() {
        let (g, ids) = chain();
        // Peering with b and d reaches {b, c} ∪ {d}.
        let reach = peer_reachable_ases(&g, &[ids[1], ids[3]]);
        assert_eq!(reach.len(), 3);
        assert!(reach.contains(&ids[2]));
        assert!(!reach.contains(&ids[0]));
        // No peers, nothing reachable.
        assert!(peer_reachable_ases(&g, &[]).is_empty());
    }

    #[test]
    fn multihomed_customer_counted_once() {
        let mut g = AsGraph::new();
        let p1 = g.add_as(AsInfo::new(Asn(1), AsKind::Transit));
        let p2 = g.add_as(AsInfo::new(Asn(2), AsKind::Transit));
        let top = g.add_as(AsInfo::new(Asn(3), AsKind::Tier1));
        let c = g.add_as(AsInfo::new(Asn(4), AsKind::Stub));
        g.add_edge(c, p1, Relationship::CustomerToProvider);
        g.add_edge(c, p2, Relationship::CustomerToProvider);
        g.add_edge(p1, top, Relationship::CustomerToProvider);
        g.add_edge(p2, top, Relationship::CustomerToProvider);
        let cones = customer_cones(&g);
        assert_eq!(cones[top.i()].len(), 4); // top, p1, p2, c — c once
    }
}
