//! AS-level Internet model for the PEERING reproduction.
//!
//! The real testbed plugs into the live Internet; the reproduction plugs
//! into this crate: a synthetic but structurally faithful AS-level
//! topology with business relationships, policy-constrained (Gao–Rexford)
//! route propagation, customer cones and AS rank, geography, prefix
//! assignment, and IXP membership — everything §4.1 of the paper measures
//! against.
//!
//! * [`graph`] — the AS graph: nodes, customer/provider and peer edges.
//! * [`routing`] — valley-free propagation of announcements, including
//!   prepending, AS-path poisoning, selective (per-neighbor) export, and
//!   multi-origin announcements (anycast / hijack); plus an AS-level data
//!   plane for tracing traffic.
//! * [`cone`] — customer cones and CAIDA-style AS rank.
//! * [`gen`] — the Internet generator (tier-1 clique, transit hierarchy,
//!   content/CDN ASes with open peering, stubs; prefixes; countries; IXP
//!   memberships with the paper's AMS-IX policy mix).
//! * [`zoo`] — Topology-Zoo-style PoP-level maps, including the 24-PoP
//!   Hurricane Electric backbone used in §4.2.

pub mod cone;
pub mod gen;
pub mod graph;
pub mod routing;
pub mod zoo;

pub use cone::{as_rank, customer_cones};
pub use gen::{Internet, InternetConfig, IxpSpec};
pub use graph::{AsGraph, AsIdx, AsInfo, AsKind, PeeringPolicy, Relationship};
pub use routing::{Announcement, PropagationResult, RibEntry, RouteClass};
pub use zoo::{hurricane_electric, small_ring, Pop, PopTopology};
