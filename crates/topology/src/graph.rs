//! The AS graph: autonomous systems and their business relationships.

use peering_netsim::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Dense index of an AS within a graph (stable for the graph's lifetime).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AsIdx(pub u32);

impl AsIdx {
    /// As a usize for slice indexing.
    pub fn i(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as#{}", self.0)
    }
}

/// The role an AS plays in the routing ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Global transit-free backbone (the tier-1 clique).
    Tier1,
    /// Regional / national transit provider.
    Transit,
    /// Eyeball / access network.
    Access,
    /// Content provider or CDN (Akamai, Google, Netflix class).
    Content,
    /// Multi-homed enterprise.
    Enterprise,
    /// Single-homed stub.
    Stub,
    /// A testbed AS (PEERING itself).
    Testbed,
}

/// Published peering policy, per PeeringDB convention. §4.1 reports the
/// AMS-IX mix: open is the most prevalent policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeeringPolicy {
    /// Peers with anyone who asks.
    Open,
    /// Decides per request.
    CaseByCase,
    /// Does not peer (or only with settlement).
    Closed,
    /// No published policy.
    Unlisted,
}

/// The relationship on an edge, read as "first is X of second".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// First AS buys transit from the second (customer-to-provider).
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

/// Everything known about one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Role.
    pub kind: AsKind,
    /// ISO-3166-ish country code.
    pub country: [u8; 2],
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Prefix>,
    /// IPv6 prefixes originated by this AS (dual-stack deployment).
    pub v6_prefixes: Vec<peering_netsim::Ipv6Net>,
    /// Published peering policy.
    pub policy: PeeringPolicy,
    /// Whether this AS connects to route servers where available.
    pub uses_route_server: bool,
    /// Display name for reports ("Hurricane Electric"), if notable.
    pub name: Option<String>,
}

impl AsInfo {
    /// Minimal constructor.
    pub fn new(asn: Asn, kind: AsKind) -> Self {
        AsInfo {
            asn,
            kind,
            country: *b"US",
            prefixes: Vec::new(),
            v6_prefixes: Vec::new(),
            policy: PeeringPolicy::Unlisted,
            uses_route_server: false,
            name: None,
        }
    }

    /// The country as a string.
    pub fn country_str(&self) -> &str {
        std::str::from_utf8(&self.country).unwrap_or("??")
    }
}

/// The AS-level Internet graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: Vec<AsInfo>,
    by_asn: BTreeMap<Asn, AsIdx>,
    /// providers[u] = ASes u buys transit from.
    providers: Vec<Vec<AsIdx>>,
    /// customers[u] = ASes buying transit from u.
    customers: Vec<Vec<AsIdx>>,
    /// peers[u] = settlement-free peers of u.
    peers: Vec<Vec<AsIdx>>,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an AS; panics if the ASN is already present.
    pub fn add_as(&mut self, info: AsInfo) -> AsIdx {
        assert!(
            !self.by_asn.contains_key(&info.asn),
            "duplicate ASN {}",
            info.asn
        );
        let idx = AsIdx(self.nodes.len() as u32);
        self.by_asn.insert(info.asn, idx);
        self.nodes.push(info);
        self.providers.push(Vec::new());
        self.customers.push(Vec::new());
        self.peers.push(Vec::new());
        idx
    }

    /// Add an edge. `CustomerToProvider` reads "a is a customer of b".
    /// Self edges and edges between already-related ASes are ignored, so
    /// a pair can never be double-booked as both peers and
    /// customer/provider.
    pub fn add_edge(&mut self, a: AsIdx, b: AsIdx, rel: Relationship) {
        if a == b || self.adjacent(a, b) {
            return;
        }
        match rel {
            Relationship::CustomerToProvider => {
                self.providers[a.i()].push(b);
                self.customers[b.i()].push(a);
            }
            Relationship::PeerToPeer => {
                self.peers[a.i()].push(b);
                self.peers[b.i()].push(a);
            }
        }
    }

    /// Remove a peering edge (used when simulating de-peering).
    pub fn remove_peering(&mut self, a: AsIdx, b: AsIdx) {
        self.peers[a.i()].retain(|&x| x != b);
        self.peers[b.i()].retain(|&x| x != a);
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node info by index.
    pub fn info(&self, idx: AsIdx) -> &AsInfo {
        &self.nodes[idx.i()]
    }

    /// Mutable node info by index.
    pub fn info_mut(&mut self, idx: AsIdx) -> &mut AsInfo {
        &mut self.nodes[idx.i()]
    }

    /// Look up an AS by number.
    pub fn idx_of(&self, asn: Asn) -> Option<AsIdx> {
        self.by_asn.get(&asn).copied()
    }

    /// Providers of `u`.
    pub fn providers(&self, u: AsIdx) -> &[AsIdx] {
        &self.providers[u.i()]
    }

    /// Customers of `u`.
    pub fn customers(&self, u: AsIdx) -> &[AsIdx] {
        &self.customers[u.i()]
    }

    /// Peers of `u`.
    pub fn peers(&self, u: AsIdx) -> &[AsIdx] {
        &self.peers[u.i()]
    }

    /// All neighbors of `u` regardless of relationship.
    pub fn neighbors(&self, u: AsIdx) -> impl Iterator<Item = AsIdx> + '_ {
        self.providers[u.i()]
            .iter()
            .chain(&self.customers[u.i()])
            .chain(&self.peers[u.i()])
            .copied()
    }

    /// True if `a` and `b` share any relationship.
    pub fn adjacent(&self, a: AsIdx, b: AsIdx) -> bool {
        self.providers[a.i()].contains(&b)
            || self.customers[a.i()].contains(&b)
            || self.peers[a.i()].contains(&b)
    }

    /// All AS indices.
    pub fn indices(&self) -> impl Iterator<Item = AsIdx> {
        (0..self.nodes.len() as u32).map(AsIdx)
    }

    /// All node infos.
    pub fn infos(&self) -> impl Iterator<Item = (AsIdx, &AsInfo)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (AsIdx(i as u32), n))
    }

    /// Total directed c2p edge count plus undirected peer edge count.
    pub fn edge_counts(&self) -> (usize, usize) {
        let c2p = self.providers.iter().map(Vec::len).sum();
        let p2p = self.peers.iter().map(Vec::len).sum::<usize>() / 2;
        (c2p, p2p)
    }

    /// Total prefixes originated across all ASes.
    pub fn total_prefixes(&self) -> usize {
        self.nodes.iter().map(|n| n.prefixes.len()).sum()
    }

    /// The AS originating a prefix (most specific covering origin).
    pub fn origin_of(&self, prefix: &Prefix) -> Option<AsIdx> {
        let mut best: Option<(u8, AsIdx)> = None;
        for (idx, info) in self.infos() {
            for p in &info.prefixes {
                if p.covers(prefix) {
                    let candidate = (p.len(), idx);
                    if best.map(|(l, _)| candidate.0 > l).unwrap_or(true) {
                        best = Some(candidate);
                    }
                }
            }
        }
        best.map(|(_, idx)| idx)
    }

    /// Verify structural invariants (no relationship double-booking, no
    /// c2p cycles among tier hierarchy is checked by the generator).
    pub fn validate(&self) -> Result<(), String> {
        for u in self.indices() {
            for &p in self.providers(u) {
                if self.peers[u.i()].contains(&p) {
                    return Err(format!("{u} has {p} as both provider and peer"));
                }
                if self.providers[p.i()].contains(&u) {
                    return Err(format!("{u} and {p} are mutual providers"));
                }
                if !self.customers[p.i()].contains(&u) {
                    return Err(format!("provider edge {u}->{p} missing reverse"));
                }
            }
            for &q in self.peers(u) {
                if !self.peers[q.i()].contains(&u) {
                    return Err(format!("peer edge {u}<->{q} not symmetric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (AsGraph, AsIdx, AsIdx, AsIdx) {
        // c -> b -> a (customers up to providers), c peers with d.
        let mut g = AsGraph::new();
        let a = g.add_as(AsInfo::new(Asn(1), AsKind::Tier1));
        let b = g.add_as(AsInfo::new(Asn(2), AsKind::Transit));
        let c = g.add_as(AsInfo::new(Asn(3), AsKind::Stub));
        g.add_edge(b, a, Relationship::CustomerToProvider);
        g.add_edge(c, b, Relationship::CustomerToProvider);
        (g, a, b, c)
    }

    #[test]
    fn add_and_lookup() {
        let (g, a, b, c) = tiny();
        assert_eq!(g.len(), 3);
        assert_eq!(g.idx_of(Asn(2)), Some(b));
        assert_eq!(g.idx_of(Asn(99)), None);
        assert_eq!(g.info(a).asn, Asn(1));
        assert_eq!(g.providers(c), &[b]);
        assert_eq!(g.customers(a), &[b]);
        assert!(g.adjacent(b, a));
        assert!(!g.adjacent(c, a));
        assert_eq!(g.edge_counts(), (2, 0));
    }

    #[test]
    fn peer_edges_are_symmetric() {
        let (mut g, _a, b, c) = tiny();
        let d = g.add_as(AsInfo::new(Asn(4), AsKind::Content));
        g.add_edge(c, d, Relationship::PeerToPeer);
        assert_eq!(g.peers(c), &[d]);
        assert_eq!(g.peers(d), &[c]);
        assert!(g.validate().is_ok());
        g.remove_peering(c, d);
        assert!(g.peers(c).is_empty() && g.peers(d).is_empty());
        let _ = b;
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let (mut g, a, b, _c) = tiny();
        g.add_edge(b, a, Relationship::CustomerToProvider);
        g.add_edge(a, a, Relationship::PeerToPeer);
        assert_eq!(g.providers(b).len(), 1);
        assert!(g.peers(a).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate ASN")]
    fn duplicate_asn_panics() {
        let mut g = AsGraph::new();
        g.add_as(AsInfo::new(Asn(1), AsKind::Stub));
        g.add_as(AsInfo::new(Asn(1), AsKind::Stub));
    }

    #[test]
    fn neighbors_iterates_all_relations() {
        let (mut g, a, b, c) = tiny();
        let d = g.add_as(AsInfo::new(Asn(4), AsKind::Content));
        g.add_edge(b, d, Relationship::PeerToPeer);
        let mut n: Vec<AsIdx> = g.neighbors(b).collect();
        n.sort();
        assert_eq!(n, vec![a, c, d]);
    }

    #[test]
    fn origin_of_prefers_most_specific() {
        let (mut g, a, b, _c) = tiny();
        g.info_mut(a).prefixes.push("10.0.0.0/8".parse().unwrap());
        g.info_mut(b).prefixes.push("10.1.0.0/16".parse().unwrap());
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(g.origin_of(&p), Some(b));
        let q: Prefix = "10.200.0.0/24".parse().unwrap();
        assert_eq!(g.origin_of(&q), Some(a));
        let r: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(g.origin_of(&r), None);
    }

    #[test]
    fn double_booking_is_refused() {
        let (mut g, a, b, _c) = tiny();
        // b already buys transit from a; a peering edge must be ignored.
        g.add_edge(b, a, Relationship::PeerToPeer);
        assert!(g.peers(a).is_empty());
        assert!(g.peers(b).is_empty());
        assert!(g.validate().is_ok());
        // And the reverse: peers can't become customer/provider.
        let d = g.add_as(AsInfo::new(Asn(9), AsKind::Content));
        g.add_edge(b, d, Relationship::PeerToPeer);
        g.add_edge(b, d, Relationship::CustomerToProvider);
        assert!(g.providers(b).len() == 1, "only the original provider");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn country_str() {
        let mut info = AsInfo::new(Asn(5), AsKind::Access);
        info.country = *b"NL";
        assert_eq!(info.country_str(), "NL");
    }
}
