//! Topology-Zoo-style PoP-level maps.
//!
//! §4.2 emulates "the PoP-level global backbone of Hurricane Electric
//! (HE), using data from Topology Zoo": 24 PoPs, one Quagga per PoP, one
//! prefix each, and the Amsterdam PoP peering at AMS-IX. The map here is
//! hand-reconstructed to that shape: HE's 2014 city list with a plausible
//! backbone adjacency (US rings, transatlantic waves, EU ring, Asia).

use serde::{Deserialize, Serialize};

/// One point of presence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pop {
    /// City name.
    pub city: &'static str,
    /// Country code.
    pub country: &'static str,
}

/// A PoP-level intradomain topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopTopology {
    /// Network name.
    pub name: &'static str,
    /// PoPs, indexed by position.
    pub pops: Vec<Pop>,
    /// Undirected links `(a, b, cost)`; cost approximates distance-based
    /// IGP metric (used by the emulation's SPF).
    pub links: Vec<(usize, usize, u32)>,
}

impl PopTopology {
    /// Index of a PoP by city name.
    pub fn pop_by_city(&self, city: &str) -> Option<usize> {
        self.pops.iter().position(|p| p.city == city)
    }

    /// Neighbors of a PoP.
    pub fn neighbors(&self, pop: usize) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for &(a, b, cost) in &self.links {
            if a == pop {
                out.push((b, cost));
            } else if b == pop {
                out.push((a, cost));
            }
        }
        out
    }

    /// True if every PoP can reach every other PoP.
    pub fn is_connected(&self) -> bool {
        if self.pops.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.pops.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// The 24-PoP Hurricane Electric global backbone (2014-era city set).
pub fn hurricane_electric() -> PopTopology {
    let pops = vec![
        Pop {
            city: "Fremont",
            country: "US",
        }, // 0
        Pop {
            city: "San Jose",
            country: "US",
        }, // 1
        Pop {
            city: "Palo Alto",
            country: "US",
        }, // 2
        Pop {
            city: "Los Angeles",
            country: "US",
        }, // 3
        Pop {
            city: "Seattle",
            country: "US",
        }, // 4
        Pop {
            city: "Portland",
            country: "US",
        }, // 5
        Pop {
            city: "Las Vegas",
            country: "US",
        }, // 6
        Pop {
            city: "Phoenix",
            country: "US",
        }, // 7
        Pop {
            city: "Denver",
            country: "US",
        }, // 8
        Pop {
            city: "Dallas",
            country: "US",
        }, // 9
        Pop {
            city: "Kansas City",
            country: "US",
        }, // 10
        Pop {
            city: "Chicago",
            country: "US",
        }, // 11
        Pop {
            city: "Toronto",
            country: "CA",
        }, // 12
        Pop {
            city: "New York",
            country: "US",
        }, // 13
        Pop {
            city: "Ashburn",
            country: "US",
        }, // 14
        Pop {
            city: "Atlanta",
            country: "US",
        }, // 15
        Pop {
            city: "Miami",
            country: "US",
        }, // 16
        Pop {
            city: "London",
            country: "GB",
        }, // 17
        Pop {
            city: "Amsterdam",
            country: "NL",
        }, // 18
        Pop {
            city: "Frankfurt",
            country: "DE",
        }, // 19
        Pop {
            city: "Paris",
            country: "FR",
        }, // 20
        Pop {
            city: "Zurich",
            country: "CH",
        }, // 21
        Pop {
            city: "Stockholm",
            country: "SE",
        }, // 22
        Pop {
            city: "Hong Kong",
            country: "HK",
        }, // 23
    ];
    // Costs roughly proportional to great-circle distance (hundreds km).
    let links = vec![
        // Bay Area triangle.
        (0, 1, 2),
        (0, 2, 2),
        (1, 2, 2),
        // West coast.
        (1, 3, 50),
        (0, 4, 110),
        (4, 5, 25),
        (3, 6, 40),
        (6, 7, 40),
        (3, 7, 60),
        // Mountain / central.
        (6, 8, 100),
        (8, 10, 90),
        (7, 9, 140),
        (9, 10, 75),
        (9, 15, 115),
        (10, 11, 70),
        // East.
        (11, 12, 70),
        (11, 13, 115),
        (12, 13, 80),
        (13, 14, 40),
        (14, 15, 85),
        (15, 16, 95),
        (9, 16, 180),
        // Transatlantic.
        (13, 17, 560),
        (14, 17, 590),
        // Europe ring.
        (17, 18, 36),
        (17, 20, 34),
        (18, 19, 36),
        (19, 21, 30),
        (20, 21, 49),
        (18, 22, 113),
        (19, 22, 120),
        // Asia.
        (1, 23, 1100),
        (4, 23, 1030),
    ];
    PopTopology {
        name: "Hurricane Electric",
        pops,
        links,
    }
}

/// A small N-PoP ring with unit costs, for tests and examples.
pub fn small_ring(n: usize) -> PopTopology {
    const CITIES: &[&str] = &[
        "PoP-0", "PoP-1", "PoP-2", "PoP-3", "PoP-4", "PoP-5", "PoP-6", "PoP-7", "PoP-8", "PoP-9",
        "PoP-10", "PoP-11", "PoP-12", "PoP-13", "PoP-14", "PoP-15",
    ];
    let n = n.min(CITIES.len());
    let pops = (0..n)
        .map(|i| Pop {
            city: CITIES[i],
            country: "US",
        })
        .collect();
    let mut links = Vec::new();
    for i in 0..n {
        links.push((i, (i + 1) % n, 1));
    }
    if n <= 2 {
        links.truncate(n.saturating_sub(1));
    }
    PopTopology {
        name: "ring",
        pops,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_has_24_pops_and_is_connected() {
        let he = hurricane_electric();
        assert_eq!(he.pops.len(), 24, "paper: 24 PoPs");
        assert!(he.is_connected());
        // No dangling link indices.
        for &(a, b, _) in &he.links {
            assert!(a < 24 && b < 24);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn he_has_amsterdam_for_ams_ix() {
        let he = hurricane_electric();
        let ams = he.pop_by_city("Amsterdam").expect("Amsterdam PoP");
        assert_eq!(he.pops[ams].country, "NL");
        assert!(!he.neighbors(ams).is_empty());
        assert_eq!(he.pop_by_city("Atlantis"), None);
    }

    #[test]
    fn he_every_pop_has_a_neighbor() {
        let he = hurricane_electric();
        for i in 0..he.pops.len() {
            assert!(!he.neighbors(i).is_empty(), "PoP {i} isolated");
        }
    }

    #[test]
    fn ring_shapes() {
        let r = small_ring(5);
        assert_eq!(r.pops.len(), 5);
        assert_eq!(r.links.len(), 5);
        assert!(r.is_connected());
        assert_eq!(r.neighbors(0).len(), 2);
        let two = small_ring(2);
        assert_eq!(two.links.len(), 1);
        assert!(two.is_connected());
        let one = small_ring(1);
        assert!(one.is_connected());
        assert!(one.links.is_empty());
    }
}
