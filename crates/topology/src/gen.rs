//! The Internet generator.
//!
//! Builds a synthetic AS-level Internet with the structural features the
//! paper's evaluation depends on: a tier-1 clique, a transit hierarchy,
//! content/CDN ASes with open peering policies (the trend §3 exploits),
//! eyeball and stub networks, geography across ~60 countries, a scaled
//! global prefix table, and IXP member populations with the exact policy
//! mix §4.1 reports for AMS-IX (554 route-server members; of the 115
//! others: 48 open, 12 closed, 40 case-by-case, 15 unlisted).

use crate::graph::{AsGraph, AsIdx, AsInfo, AsKind, PeeringPolicy, Relationship};
use peering_netsim::{Asn, Prefix, SimRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Geographic regions used for locality-biased edge creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Europe.
    Eu,
    /// North America.
    Na,
    /// South America.
    Sa,
    /// Asia.
    As,
    /// Africa.
    Af,
    /// Oceania.
    Oc,
}

/// `(country code, region, relative weight)` — the sampling table for AS
/// geography. 64 countries so that a few hundred peers plausibly span the
/// "59 countries" the paper reports.
pub const COUNTRIES: &[(&[u8; 2], Region, u32)] = &[
    (b"US", Region::Na, 180),
    (b"DE", Region::Eu, 90),
    (b"GB", Region::Eu, 80),
    (b"NL", Region::Eu, 75),
    (b"FR", Region::Eu, 60),
    (b"RU", Region::Eu, 60),
    (b"BR", Region::Sa, 55),
    (b"JP", Region::As, 50),
    (b"CA", Region::Na, 45),
    (b"IT", Region::Eu, 40),
    (b"ES", Region::Eu, 35),
    (b"AU", Region::Oc, 35),
    (b"IN", Region::As, 35),
    (b"CN", Region::As, 35),
    (b"SE", Region::Eu, 30),
    (b"PL", Region::Eu, 30),
    (b"CH", Region::Eu, 28),
    (b"UA", Region::Eu, 26),
    (b"KR", Region::As, 25),
    (b"AT", Region::Eu, 22),
    (b"BE", Region::Eu, 22),
    (b"CZ", Region::Eu, 20),
    (b"DK", Region::Eu, 18),
    (b"NO", Region::Eu, 18),
    (b"FI", Region::Eu, 16),
    (b"RO", Region::Eu, 16),
    (b"HK", Region::As, 16),
    (b"SG", Region::As, 15),
    (b"MX", Region::Na, 15),
    (b"AR", Region::Sa, 14),
    (b"TR", Region::Eu, 14),
    (b"ZA", Region::Af, 13),
    (b"ID", Region::As, 12),
    (b"TW", Region::As, 12),
    (b"IE", Region::Eu, 11),
    (b"PT", Region::Eu, 11),
    (b"GR", Region::Eu, 10),
    (b"HU", Region::Eu, 10),
    (b"BG", Region::Eu, 10),
    (b"TH", Region::As, 10),
    (b"NZ", Region::Oc, 9),
    (b"CL", Region::Sa, 9),
    (b"CO", Region::Sa, 8),
    (b"IL", Region::As, 8),
    (b"AE", Region::As, 8),
    (b"SK", Region::Eu, 7),
    (b"LT", Region::Eu, 7),
    (b"LV", Region::Eu, 6),
    (b"EE", Region::Eu, 6),
    (b"SI", Region::Eu, 6),
    (b"HR", Region::Eu, 6),
    (b"RS", Region::Eu, 6),
    (b"MY", Region::As, 6),
    (b"PH", Region::As, 6),
    (b"VN", Region::As, 6),
    (b"EG", Region::Af, 6),
    (b"NG", Region::Af, 5),
    (b"KE", Region::Af, 5),
    (b"SA", Region::As, 5),
    (b"PK", Region::As, 5),
    (b"PE", Region::Sa, 5),
    (b"IS", Region::Eu, 4),
    (b"LU", Region::Eu, 4),
    (b"MD", Region::Eu, 4),
];

/// Names from §4.1 ("important networks" PEERING peers with), attached to
/// the biggest generated content/transit ASes for readable reports.
pub const NOTABLE_NAMES: &[&str] = &[
    "Google",
    "Netflix",
    "Akamai",
    "Microsoft",
    "Hurricane Electric",
    "Airtel",
    "GoDaddy",
    "Pacnet",
    "RETN",
    "Terremark",
    "TransTeleCom",
];

/// Parameters for one IXP's member population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpSpec {
    /// Display name.
    pub name: String,
    /// Host country.
    pub country: [u8; 2],
    /// Total member count.
    pub target_members: usize,
    /// Members connected to the route servers.
    pub rs_members: usize,
    /// Of the non-RS members: how many have each policy.
    pub open: usize,
    /// Closed-policy members among non-RS members.
    pub closed: usize,
    /// Case-by-case members among non-RS members.
    pub case_by_case: usize,
    // Remaining non-RS members are Unlisted.
}

impl IxpSpec {
    /// AMS-IX exactly as §4.1 describes it: 669 members, 554 on the route
    /// servers; of the 115 others 48 open / 12 closed / 40 case-by-case /
    /// 15 unlisted.
    pub fn ams_ix() -> Self {
        IxpSpec {
            name: "AMS-IX".into(),
            country: *b"NL",
            target_members: 669,
            rs_members: 554,
            open: 48,
            closed: 12,
            case_by_case: 40,
        }
    }

    /// Phoenix-IX, the smaller US deployment added in September 2014.
    pub fn phoenix_ix() -> Self {
        IxpSpec {
            name: "Phoenix-IX".into(),
            country: *b"US",
            target_members: 70,
            rs_members: 52,
            open: 10,
            closed: 2,
            case_by_case: 4,
        }
    }

    /// Unlisted members among the non-RS population.
    pub fn unlisted(&self) -> usize {
        self.target_members
            .saturating_sub(self.rs_members)
            .saturating_sub(self.open + self.closed + self.case_by_case)
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Master seed.
    pub seed: u64,
    /// Tier-1 backbone count (clique).
    pub n_tier1: usize,
    /// Transit providers.
    pub n_transit: usize,
    /// Access / eyeball networks.
    pub n_access: usize,
    /// Content providers and CDNs.
    pub n_content: usize,
    /// Multi-homed enterprises.
    pub n_enterprise: usize,
    /// Single-homed stubs.
    pub n_stub: usize,
    /// Approximate global prefix-table size to target.
    pub total_prefixes: usize,
    /// IXPs to populate.
    pub ixps: Vec<IxpSpec>,
}

impl InternetConfig {
    /// Tiny Internet for unit tests (~120 ASes).
    pub fn small(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 3,
            n_transit: 12,
            n_access: 30,
            n_content: 10,
            n_enterprise: 10,
            n_stub: 55,
            total_prefixes: 1200,
            ixps: vec![IxpSpec {
                name: "TEST-IX".into(),
                country: *b"NL",
                target_members: 30,
                rs_members: 22,
                open: 4,
                closed: 1,
                case_by_case: 2,
            }],
        }
    }

    /// Evaluation-scale Internet: ~6,000 ASes and a 1:8-scaled prefix
    /// table (65,536 ≈ 524k/8), with AMS-IX and Phoenix-IX populated at
    /// their real member counts.
    pub fn eval(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 12,
            n_transit: 260,
            n_access: 1900,
            n_content: 200,
            n_enterprise: 550,
            n_stub: 3078,
            total_prefixes: 65_536,
            ixps: vec![IxpSpec::ams_ix(), IxpSpec::phoenix_ix()],
        }
    }

    /// The full 2014 Internet: ~47k ASes and the real ~524k-prefix
    /// table. Expensive (seconds to build, hundreds of MB); used for
    /// unscaled absolute numbers.
    pub fn full(seed: u64) -> Self {
        InternetConfig {
            seed,
            n_tier1: 13,
            n_transit: 2_100,
            n_access: 15_000,
            n_content: 1_600,
            n_enterprise: 4_400,
            n_stub: 23_900,
            total_prefixes: 524_000,
            ixps: vec![IxpSpec::ams_ix(), IxpSpec::phoenix_ix()],
        }
    }

    /// Total AS count.
    pub fn total_ases(&self) -> usize {
        self.n_tier1
            + self.n_transit
            + self.n_access
            + self.n_content
            + self.n_enterprise
            + self.n_stub
    }
}

/// A generated Internet: the graph plus IXP member rosters.
#[derive(Debug, Clone)]
pub struct Internet {
    /// The AS graph.
    pub graph: AsGraph,
    /// Member lists, parallel to `specs`.
    pub ixp_members: Vec<Vec<AsIdx>>,
    /// The IXP specifications used.
    pub specs: Vec<IxpSpec>,
    /// The configuration used.
    pub cfg: InternetConfig,
}

fn region_of(country: &[u8; 2]) -> Region {
    COUNTRIES
        .iter()
        .find(|(c, _, _)| *c == country)
        .map(|(_, r, _)| *r)
        .unwrap_or(Region::Na)
}

fn sample_country(rng: &mut SimRng) -> [u8; 2] {
    let total: u32 = COUNTRIES.iter().map(|(_, _, w)| w).sum();
    let mut pick = rng.below(total as u64) as u32;
    for (code, _, w) in COUNTRIES {
        if pick < *w {
            return **code;
        }
        pick -= w;
    }
    *b"US"
}

impl Internet {
    /// Build an Internet from a configuration.
    pub fn build(cfg: InternetConfig) -> Internet {
        let root = SimRng::new(cfg.seed);
        let mut rng = root.fork("topology-gen");
        let mut g = AsGraph::new();

        // -- nodes -----------------------------------------------------
        let mut next_asn = 100u32;
        let mut fresh_asn = |rng: &mut SimRng| {
            next_asn += 1 + rng.below(6) as u32;
            while Asn(next_asn).is_private() || Asn(next_asn).is_reserved() {
                next_asn += 1;
            }
            Asn(next_asn)
        };

        let mut tier1s = Vec::new();
        for _ in 0..cfg.n_tier1 {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Tier1);
            info.country = if rng.chance(0.6) {
                *b"US"
            } else {
                sample_country(&mut rng)
            };
            info.policy = PeeringPolicy::Closed; // tier-1s famously don't open-peer
            tier1s.push(g.add_as(info));
        }
        let mut transits = Vec::new();
        for _ in 0..cfg.n_transit {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Transit);
            info.country = sample_country(&mut rng);
            info.policy = if rng.chance(0.45) {
                PeeringPolicy::Open
            } else if rng.chance(0.5) {
                PeeringPolicy::CaseByCase
            } else {
                PeeringPolicy::Unlisted
            };
            info.uses_route_server = rng.chance(0.7);
            transits.push(g.add_as(info));
        }
        let mut contents = Vec::new();
        for i in 0..cfg.n_content {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Content);
            info.country = if rng.chance(0.5) {
                *b"US"
            } else {
                sample_country(&mut rng)
            };
            // Content providers overwhelmingly peer openly (§3).
            info.policy = if rng.chance(0.85) {
                PeeringPolicy::Open
            } else {
                PeeringPolicy::CaseByCase
            };
            info.uses_route_server = rng.chance(0.85);
            if let Some(name) = NOTABLE_NAMES.get(i) {
                info.name = Some(name.to_string());
            }
            contents.push(g.add_as(info));
        }
        let mut accesses = Vec::new();
        for _ in 0..cfg.n_access {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Access);
            info.country = sample_country(&mut rng);
            info.policy = if rng.chance(0.3) {
                PeeringPolicy::Open
            } else if rng.chance(0.4) {
                PeeringPolicy::CaseByCase
            } else {
                PeeringPolicy::Unlisted
            };
            info.uses_route_server = rng.chance(0.6);
            accesses.push(g.add_as(info));
        }
        let mut enterprises = Vec::new();
        for _ in 0..cfg.n_enterprise {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Enterprise);
            info.country = sample_country(&mut rng);
            enterprises.push(g.add_as(info));
        }
        let mut stubs = Vec::new();
        for _ in 0..cfg.n_stub {
            let mut info = AsInfo::new(fresh_asn(&mut rng), AsKind::Stub);
            info.country = sample_country(&mut rng);
            stubs.push(g.add_as(info));
        }

        // -- edges -----------------------------------------------------
        // Tier-1 clique.
        for i in 0..tier1s.len() {
            for j in (i + 1)..tier1s.len() {
                g.add_edge(tier1s[i], tier1s[j], Relationship::PeerToPeer);
            }
        }
        // Transits: 1-2 providers among tier-1s (or earlier transits for a
        // deeper hierarchy), plus regional peering among transits.
        for (i, &t) in transits.iter().enumerate() {
            let n_prov = 1 + rng.below(2) as usize;
            for _ in 0..n_prov {
                let upstream = if i >= 4 && rng.chance(0.4) {
                    transits[rng.index(i.min(transits.len()))]
                } else {
                    tier1s[rng.index(tier1s.len())]
                };
                g.add_edge(t, upstream, Relationship::CustomerToProvider);
            }
        }
        for i in 0..transits.len() {
            for j in (i + 1)..transits.len() {
                let same_region = region_of(&g.info(transits[i]).country)
                    == region_of(&g.info(transits[j]).country);
                let p = if same_region { 0.08 } else { 0.015 };
                if rng.chance(p) {
                    g.add_edge(transits[i], transits[j], Relationship::PeerToPeer);
                }
            }
        }
        // A regional-preference provider picker.
        let pick_provider =
            |g: &AsGraph, rng: &mut SimRng, country: &[u8; 2], pool: &[AsIdx]| -> AsIdx {
                // Try a few times for a same-region provider, else any.
                for _ in 0..4 {
                    let cand = pool[rng.index(pool.len())];
                    if region_of(&g.info(cand).country) == region_of(country) {
                        return cand;
                    }
                }
                pool[rng.index(pool.len())]
            };
        for &a in &accesses {
            let country = g.info(a).country;
            let n_prov = 1 + rng.below(3) as usize; // 1-3 providers
            for _ in 0..n_prov {
                let p = pick_provider(&g, &mut rng, &country, &transits);
                g.add_edge(a, p, Relationship::CustomerToProvider);
            }
        }
        for &c in &contents {
            let country = g.info(c).country;
            let n_prov = 1 + rng.below(2) as usize;
            for _ in 0..n_prov {
                let p = if rng.chance(0.3) {
                    tier1s[rng.index(tier1s.len())]
                } else {
                    pick_provider(&g, &mut rng, &country, &transits)
                };
                g.add_edge(c, p, Relationship::CustomerToProvider);
            }
            // CDNs peer directly with eyeballs (the §3 trend).
            let n_peerings = 2 + rng.below(6) as usize;
            for _ in 0..n_peerings {
                let e = accesses[rng.index(accesses.len())];
                g.add_edge(c, e, Relationship::PeerToPeer);
            }
        }
        for &e in &enterprises {
            let country = g.info(e).country;
            for _ in 0..2 {
                let pool: &[AsIdx] = if rng.chance(0.7) {
                    &transits
                } else {
                    &accesses
                };
                let p = pick_provider(&g, &mut rng, &country, pool);
                g.add_edge(e, p, Relationship::CustomerToProvider);
            }
        }
        for &s in &stubs {
            let country = g.info(s).country;
            // Stubs overwhelmingly buy from access/regional networks, not
            // directly from big transit — this keeps transit customer
            // cones realistic (they matter for §4.1 reachability).
            let pool: &[AsIdx] = if rng.chance(0.85) {
                &accesses
            } else {
                &transits
            };
            let p = pick_provider(&g, &mut rng, &country, pool);
            g.add_edge(s, p, Relationship::CustomerToProvider);
        }

        // -- prefixes ----------------------------------------------------
        // Heavy-tailed per-kind weights, normalized to total_prefixes.
        let mut weights: Vec<f64> = Vec::with_capacity(g.len());
        let mut wrng = root.fork("prefix-weights");
        for (_, info) in g.infos() {
            // The global table is dominated by access/stub deaggregation,
            // with a heavy tail: most ASes announce a couple of prefixes,
            // a few whales announce thousands.
            let w = match info.kind {
                AsKind::Tier1 => 10.0 + wrng.pareto(10.0, 1.1),
                AsKind::Transit => 3.0 + wrng.pareto(2.0, 1.05),
                AsKind::Content => 1.5 + wrng.pareto(1.0, 1.05),
                AsKind::Access => 1.5 + wrng.pareto(1.0, 1.1),
                AsKind::Enterprise => 1.0 + wrng.pareto(0.3, 1.5),
                AsKind::Stub => 1.0 + wrng.pareto(0.2, 1.6),
                AsKind::Testbed => 1.0,
            };
            weights.push(w);
        }
        let wsum: f64 = weights.iter().sum();
        let mut block = 0u32; // sequential /24 blocks from 16.0.0.0 up
        let base = u32::from(Ipv4Addr::new(16, 0, 0, 0));
        let n_nodes = g.len();
        for (i, weight) in weights.iter().enumerate().take(n_nodes) {
            let share = ((weight / wsum) * cfg.total_prefixes as f64).round() as usize;
            let count = share.max(1);
            let info = g.info_mut(AsIdx(i as u32));
            for _ in 0..count {
                let addr = base + block * 256;
                info.prefixes.push(Prefix::V4(peering_netsim::Ipv4Net::new(
                    Ipv4Addr::from(addr),
                    24,
                )));
                block += 1;
            }
        }

        // -- IPv6 (dual stack) ---------------------------------------------
        // The paper plans IPv6 support; a realistic fraction of ASes is
        // dual-stacked (content networks led that transition).
        let mut v6rng = root.fork("dual-stack");
        let mut v6_block = 0u32;
        let n_nodes2 = g.len();
        for i in 0..n_nodes2 {
            let idx = AsIdx(i as u32);
            let p_dual = match g.info(idx).kind {
                AsKind::Content => 0.8,
                AsKind::Tier1 => 0.9,
                AsKind::Transit => 0.5,
                AsKind::Access => 0.3,
                AsKind::Enterprise => 0.15,
                AsKind::Stub => 0.1,
                AsKind::Testbed => 0.0,
            };
            if v6rng.chance(p_dual) {
                let net = peering_netsim::Ipv6Net::new(
                    std::net::Ipv6Addr::new(
                        0x2001,
                        (0x4000 + (v6_block >> 16)) as u16,
                        (v6_block & 0xFFFF) as u16,
                        0,
                        0,
                        0,
                        0,
                        0,
                    ),
                    48,
                );
                g.info_mut(idx).v6_prefixes.push(net);
                v6_block += 1;
            }
        }

        // -- IXP memberships ---------------------------------------------
        let mut mrng = root.fork("ixp-members");
        let mut ixp_members = Vec::new();
        // Cone sizes drive carrier-membership weights (the big carriers
        // are at every major IXP).
        let cone_sizes = crate::cone::cone_sizes(&g);
        // Policy/RS flags are per-AS; once an earlier (larger) IXP has
        // stamped a member, later IXPs must not overwrite it, or the
        // first IXP's exact census would silently corrupt.
        let mut claimed: HashSet<AsIdx> = HashSet::new();
        for spec in &cfg.ixps {
            let members = Self::populate_ixp(&mut g, spec, &mut mrng, &mut claimed, &cone_sizes);
            ixp_members.push(members);
        }

        debug_assert!(g.validate().is_ok());
        Internet {
            graph: g,
            ixp_members,
            specs: cfg.ixps.clone(),
            cfg,
        }
    }

    /// Choose an IXP's members and stamp their policy / RS membership so
    /// the counts match the spec exactly.
    fn populate_ixp(
        g: &mut AsGraph,
        spec: &IxpSpec,
        rng: &mut SimRng,
        claimed: &mut HashSet<AsIdx>,
        cone_sizes: &[usize],
    ) -> Vec<AsIdx> {
        let host_region = region_of(&spec.country);
        // Content popularity rank (creation order = catalog popularity):
        // the big CDNs peer everywhere, the long tail mostly doesn't.
        let mut content_rank: std::collections::HashMap<AsIdx, usize> =
            std::collections::HashMap::new();
        for (idx, info) in g.infos() {
            if info.kind == AsKind::Content {
                let r = content_rank.len();
                content_rank.insert(idx, r);
            }
        }
        // Weighted sampling without replacement (A-Res: key = u^(1/w),
        // keep the largest keys). Unlike top-k scoring this stays
        // scale-invariant: the member mix is proportional to the weights
        // whether the Internet has 6k or 47k ASes.
        let mut scored: Vec<(f64, AsIdx)> = g
            .infos()
            .filter(|(_, info)| {
                // Stubs don't colocate; tier-1s are transit-free carriers
                // that never peer with small members (restrictive policy),
                // so they are not candidates for the testbed's peer set.
                !matches!(info.kind, AsKind::Stub | AsKind::Testbed | AsKind::Tier1)
            })
            .map(|(idx, info)| {
                // Route-server populations skew toward content and
                // access networks; transit carriers join, but the bigger
                // their customer base the more selectively they peer.
                let base: f64 = match info.kind {
                    AsKind::Content => {
                        let rank = content_rank.get(&idx).copied().unwrap_or(usize::MAX);
                        25.0 + 300.0 / (1.0 + rank as f64 / 8.0)
                    }
                    AsKind::Access => 22.0,
                    AsKind::Transit => {
                        // Regional transits behave like access networks;
                        // the global carriers (HE, RETN, TTK — §4.1's own
                        // peer examples) sit at every major IXP, so their
                        // weight grows with customer-cone share.
                        // "Global carrier" means a genuinely large cone
                        // (hundreds of ASes), not merely a large share of
                        // a tiny test graph.
                        let size = cone_sizes[idx.i()];
                        let share = size as f64 / g.len() as f64;
                        if size > 150 && share > 0.004 {
                            35.0 + (11000.0 * share).min(900.0)
                        } else {
                            30.0
                        }
                    }
                    AsKind::Enterprise => 8.0,
                    _ => 1.0,
                };
                // Strong locality: IXP members overwhelmingly come from
                // the host country and region, with a worldwide tail.
                let locality = if info.country == spec.country {
                    8.0
                } else if region_of(&info.country) == host_region {
                    3.0
                } else {
                    1.0
                };
                let w = base * locality;
                let u = rng.unit().clamp(1e-12, 1.0 - 1e-12);
                (u.powf(1.0 / w), idx)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("finite keys")
                .then(a.1.cmp(&b.1))
        });
        let members: Vec<AsIdx> = scored
            .into_iter()
            .take(spec.target_members)
            .map(|(_, idx)| idx)
            .collect();

        // Assign RS membership and the §4.1 policy mix deterministically,
        // touching only members no earlier IXP has stamped.
        let mut shuffled = members.clone();
        rng.shuffle(&mut shuffled);
        let (rs, non_rs) = shuffled.split_at(spec.rs_members.min(shuffled.len()));
        for &m in rs {
            if claimed.insert(m) {
                g.info_mut(m).uses_route_server = true;
            }
        }
        let mut cursor = 0usize;
        let mut assign =
            |count: usize, policy: PeeringPolicy, g: &mut AsGraph, claimed: &mut HashSet<AsIdx>| {
                for _ in 0..count {
                    if cursor < non_rs.len() {
                        if claimed.insert(non_rs[cursor]) {
                            g.info_mut(non_rs[cursor]).uses_route_server = false;
                            g.info_mut(non_rs[cursor]).policy = policy;
                        }
                        cursor += 1;
                    }
                }
            };
        assign(spec.open, PeeringPolicy::Open, g, claimed);
        assign(spec.closed, PeeringPolicy::Closed, g, claimed);
        assign(spec.case_by_case, PeeringPolicy::CaseByCase, g, claimed);
        assign(spec.unlisted(), PeeringPolicy::Unlisted, g, claimed);
        members
    }

    /// Members of IXP `i` that connect to the route server.
    pub fn rs_members(&self, i: usize) -> Vec<AsIdx> {
        self.ixp_members[i]
            .iter()
            .copied()
            .filter(|&m| self.graph.info(m).uses_route_server)
            .collect()
    }

    /// Members of IXP `i` that do NOT connect to the route server.
    pub fn bilateral_candidates(&self, i: usize) -> Vec<AsIdx> {
        self.ixp_members[i]
            .iter()
            .copied()
            .filter(|&m| !self.graph.info(m).uses_route_server)
            .collect()
    }

    /// Distinct countries across a set of ASes.
    pub fn countries_of(&self, ases: &[AsIdx]) -> HashSet<[u8; 2]> {
        ases.iter().map(|&a| self.graph.info(a).country).collect()
    }

    /// Deterministic BGP session list for message-level harnesses:
    /// every transit edge exactly once as `(customer, provider,
    /// CustomerToProvider)`, every settlement-free edge exactly once
    /// with the lower graph index first. Order is a pure function of
    /// the graph, so engine runs built from it are reproducible.
    pub fn sessions(&self) -> Vec<(AsIdx, AsIdx, Relationship)> {
        let g = &self.graph;
        let mut out = Vec::new();
        for u in g.indices() {
            for &p in g.providers(u) {
                out.push((u, p, Relationship::CustomerToProvider));
            }
            for &v in g.peers(u) {
                if u.i() < v.i() {
                    out.push((u, v, Relationship::PeerToPeer));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::as_rank;

    #[test]
    fn small_internet_is_well_formed() {
        let net = Internet::build(InternetConfig::small(1));
        let g = &net.graph;
        assert_eq!(g.len(), InternetConfig::small(1).total_ases());
        g.validate().unwrap();
        // Every non-tier1 AS has at least one provider (reachability).
        for (idx, info) in g.infos() {
            if info.kind != AsKind::Tier1 {
                assert!(
                    !g.providers(idx).is_empty(),
                    "{} ({:?}) has no provider",
                    info.asn,
                    info.kind
                );
            }
        }
        // Prefix total within 25% of target (rounding + min-1 slack).
        let total = g.total_prefixes();
        let target = net.cfg.total_prefixes;
        assert!(
            total >= target * 3 / 4 && total <= target * 5 / 4,
            "total={total} target={target}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Internet::build(InternetConfig::small(7));
        let b = Internet::build(InternetConfig::small(7));
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.edge_counts(), b.graph.edge_counts());
        for (i, (idx, info)) in a.graph.infos().enumerate() {
            let binfo = b.graph.info(AsIdx(i as u32));
            assert_eq!(info.asn, binfo.asn);
            assert_eq!(info.country, binfo.country);
            assert_eq!(info.prefixes.len(), binfo.prefixes.len());
            let _ = idx;
        }
        assert_eq!(a.ixp_members, b.ixp_members);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Internet::build(InternetConfig::small(1));
        let b = Internet::build(InternetConfig::small(2));
        assert_ne!(a.graph.edge_counts(), b.graph.edge_counts());
    }

    #[test]
    fn ixp_population_matches_spec_exactly() {
        let net = Internet::build(InternetConfig::small(3));
        let spec = &net.specs[0];
        let members = &net.ixp_members[0];
        assert_eq!(members.len(), spec.target_members);
        let rs = net.rs_members(0);
        assert_eq!(rs.len(), spec.rs_members);
        let non_rs = net.bilateral_candidates(0);
        assert_eq!(non_rs.len(), spec.target_members - spec.rs_members);
        let count = |p: PeeringPolicy| {
            non_rs
                .iter()
                .filter(|&&m| net.graph.info(m).policy == p)
                .count()
        };
        assert_eq!(count(PeeringPolicy::Open), spec.open);
        assert_eq!(count(PeeringPolicy::Closed), spec.closed);
        assert_eq!(count(PeeringPolicy::CaseByCase), spec.case_by_case);
        assert_eq!(count(PeeringPolicy::Unlisted), spec.unlisted());
    }

    #[test]
    fn ams_ix_spec_matches_paper() {
        let s = IxpSpec::ams_ix();
        assert_eq!(s.target_members, 669);
        assert_eq!(s.rs_members, 554);
        assert_eq!(s.open, 48);
        assert_eq!(s.closed, 12);
        assert_eq!(s.case_by_case, 40);
        assert_eq!(s.unlisted(), 15);
    }

    #[test]
    fn prefixes_do_not_overlap() {
        let net = Internet::build(InternetConfig::small(5));
        let mut seen = HashSet::new();
        for (_, info) in net.graph.infos() {
            for p in &info.prefixes {
                assert!(seen.insert(*p), "duplicate prefix {p}");
            }
        }
    }

    #[test]
    fn notable_names_present() {
        let net = Internet::build(InternetConfig::small(1));
        let named: Vec<&str> = net
            .graph
            .infos()
            .filter_map(|(_, i)| i.name.as_deref())
            .collect();
        assert!(named.contains(&"Google"));
        assert!(named.contains(&"Netflix"));
    }

    #[test]
    fn tier1s_have_biggest_cones() {
        let net = Internet::build(InternetConfig::small(9));
        let rank = as_rank(&net.graph);
        // The single biggest cone belongs to a tier-1 or top transit.
        let top_kind = net.graph.info(rank[0]).kind;
        assert!(
            matches!(top_kind, AsKind::Tier1 | AsKind::Transit),
            "{top_kind:?}"
        );
    }

    #[test]
    fn countries_are_diverse() {
        let net = Internet::build(InternetConfig::small(11));
        let all: Vec<AsIdx> = net.graph.indices().collect();
        let countries = net.countries_of(&all);
        assert!(countries.len() > 15, "only {} countries", countries.len());
    }

    #[test]
    fn eval_scale_builds() {
        let cfg = InternetConfig::eval(1);
        let net = Internet::build(cfg);
        assert_eq!(net.graph.len(), 6000);
        assert_eq!(net.ixp_members[0].len(), 669);
        net.graph.validate().unwrap();
    }
}
