//! Policy-constrained (Gao–Rexford) route propagation and the AS-level
//! data plane.
//!
//! This is the simulated Internet's control plane: announcements flow
//! valley-free (customer routes to everyone; peer/provider routes only to
//! customers), every AS prefers customer over peer over provider routes,
//! then shorter paths, with deterministic tiebreaks. The knobs PEERING
//! experiments turn are first-class:
//!
//! * **prepending** — inflate the origin's path length;
//! * **AS-path poisoning** — insert ASNs that will refuse the route
//!   (LIFEGUARD's failure-avoidance primitive);
//! * **selective export** — announce to a subset of neighbors (the mux
//!   lets clients choose which peers hear each announcement);
//! * **multi-origin announcements** — anycast and prefix hijacks.

use crate::graph::{AsGraph, AsIdx};
use peering_netsim::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// How a route was learned, in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteClass {
    /// We originate the prefix.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider.
    Provider,
}

/// One announcement of a prefix into the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Announcement {
    /// The originating AS.
    pub origin: AsIdx,
    /// The announced prefix (carried for reporting).
    pub prefix: Prefix,
    /// Extra times the origin prepends its own ASN.
    pub prepend: u8,
    /// ASNs inserted into the path; those ASes will reject the route
    /// (loop detection), steering traffic around them.
    pub poison: Vec<Asn>,
    /// Restrict the origin's export to these neighbors (`None` = all).
    pub export_to: Option<Vec<AsIdx>>,
    /// Restrict which ASes may carry the route at all (`None` = all).
    /// Used for address families with partial deployment: a v4-only AS
    /// cannot hold or forward an IPv6 route.
    pub participants: Option<Vec<AsIdx>>,
}

impl Announcement {
    /// A plain announcement to every neighbor.
    pub fn simple(origin: AsIdx, prefix: Prefix) -> Self {
        Announcement {
            origin,
            prefix,
            prepend: 0,
            poison: Vec::new(),
            export_to: None,
            participants: None,
        }
    }

    /// Builder: prepend count.
    pub fn prepended(mut self, n: u8) -> Self {
        self.prepend = n;
        self
    }

    /// Builder: poisoned ASNs.
    pub fn poisoned(mut self, asns: Vec<Asn>) -> Self {
        self.poison = asns;
        self
    }

    /// Builder: selective export.
    pub fn only_to(mut self, neighbors: Vec<AsIdx>) -> Self {
        self.export_to = Some(neighbors);
        self
    }

    /// Builder: restrict the set of ASes able to carry the route.
    pub fn among(mut self, participants: Vec<AsIdx>) -> Self {
        self.participants = Some(participants);
        self
    }

    fn exports_to(&self, neighbor: AsIdx) -> bool {
        match &self.export_to {
            Some(list) => list.contains(&neighbor),
            None => true,
        }
    }
}

/// The route one AS selected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// Preference class.
    pub class: RouteClass,
    /// AS-level path, self first, origin last.
    pub path: Vec<AsIdx>,
    /// Effective AS-path length including prepends and poisons.
    pub len: u32,
    /// Index of the announcement this route derives from.
    pub ann: usize,
}

/// Result of propagating a set of announcements for one prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationResult {
    routes: Vec<Option<RibEntry>>,
}

/// Outcome of tracing a packet across the AS-level data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Reached the origin; the full AS path traversed.
    Delivered(Vec<AsIdx>),
    /// Dropped at a black-holed AS.
    Dropped {
        /// Where it died.
        at: AsIdx,
        /// Hops traversed up to and including `at`.
        path: Vec<AsIdx>,
    },
    /// The source has no route at all.
    NoRoute,
}

impl PropagationResult {
    /// The selected route at `u`, if any.
    pub fn route(&self, u: AsIdx) -> Option<&RibEntry> {
        self.routes.get(u.i()).and_then(|r| r.as_ref())
    }

    /// Number of ASes with a route.
    pub fn reach_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// ASes that selected a route deriving from announcement `ann`.
    pub fn won_by(&self, ann: usize) -> usize {
        self.routes
            .iter()
            .filter(|r| r.as_ref().map(|e| e.ann == ann).unwrap_or(false))
            .count()
    }

    /// The AS-path at `u` as ASNs (self first, origin last).
    pub fn path_asns(&self, g: &AsGraph, u: AsIdx) -> Option<Vec<Asn>> {
        self.route(u)
            .map(|e| e.path.iter().map(|&i| g.info(i).asn).collect())
    }

    /// Iterate `(AsIdx, &RibEntry)` over ASes holding a route.
    pub fn iter(&self) -> impl Iterator<Item = (AsIdx, &RibEntry)> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|e| (AsIdx(i as u32), e)))
    }

    /// Trace a packet from `from` toward the prefix, honoring black holes.
    pub fn trace(&self, from: AsIdx, blackholes: &BTreeSet<AsIdx>) -> TraceOutcome {
        let Some(entry) = self.route(from) else {
            return TraceOutcome::NoRoute;
        };
        let mut walked = Vec::new();
        for &hop in &entry.path {
            walked.push(hop);
            if blackholes.contains(&hop) {
                return TraceOutcome::Dropped {
                    at: hop,
                    path: walked,
                };
            }
        }
        TraceOutcome::Delivered(walked)
    }
}

/// Candidate comparison within a class: shorter length, then lower
/// next-hop ASN, then lexicographically smaller ASN path.
fn better_same_class(g: &AsGraph, a: &RibEntry, b: &RibEntry) -> bool {
    match a.len.cmp(&b.len) {
        Ordering::Less => return true,
        Ordering::Greater => return false,
        Ordering::Equal => {}
    }
    let nh = |e: &RibEntry| e.path.get(1).map(|&i| g.info(i).asn.0).unwrap_or(0);
    match nh(a).cmp(&nh(b)) {
        Ordering::Less => return true,
        Ordering::Greater => return false,
        Ordering::Equal => {}
    }
    let key = |e: &RibEntry| -> Vec<u32> { e.path.iter().map(|&i| g.info(i).asn.0).collect() };
    key(a) < key(b)
}

/// True when candidate `a` beats incumbent `b` (across classes).
fn better(g: &AsGraph, a: &RibEntry, b: &RibEntry) -> bool {
    match a.class.cmp(&b.class) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => better_same_class(g, a, b),
    }
}

/// Per-announcement participant sets, precomputed for O(1) checks.
type ParticipantSets = Vec<Option<BTreeSet<AsIdx>>>;

fn participant_sets(anns: &[Announcement]) -> ParticipantSets {
    anns.iter()
        .map(|a| {
            a.participants
                .as_ref()
                .map(|v| v.iter().copied().collect::<BTreeSet<AsIdx>>())
        })
        .collect()
}

/// Can `u` adopt a route extending `source`? Rejects loops (`u` already
/// on the path), poisoned routes (`u`'s ASN in the poison list), and
/// non-participants (e.g. v4-only ASes for a v6 route).
fn acceptable(
    g: &AsGraph,
    anns: &[Announcement],
    sets: &ParticipantSets,
    u: AsIdx,
    source: &RibEntry,
) -> bool {
    if source.path.contains(&u) {
        return false;
    }
    if let Some(set) = &sets[source.ann] {
        if !set.contains(&u) {
            return false;
        }
    }
    let asn = g.info(u).asn;
    !anns[source.ann].poison.contains(&asn)
}

#[derive(PartialEq, Eq)]
struct QueueItem {
    len: u32,
    node: AsIdx,
}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by length, then node index for determinism.
        other
            .len
            .cmp(&self.len)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Propagate announcements for one prefix through the topology.
///
/// Runs the standard three-phase valley-free computation: customer routes
/// climb provider edges, are handed across single peer hops, and then
/// descend customer edges — with per-phase Dijkstra so longer paths never
/// displace shorter ones.
pub fn propagate(g: &AsGraph, anns: &[Announcement]) -> PropagationResult {
    let n = g.len();
    let psets = participant_sets(anns);
    // Per-announcement origin seeds. Several announcements may share one
    // origin (a multi-site testbed announcing the same prefix with
    // different export sets), so origin exports are driven off the
    // announcement list in every phase — never off the single entry the
    // origin node happens to store.
    let seed_entry = |ai: usize, ann: &Announcement| RibEntry {
        class: RouteClass::Origin,
        path: vec![ann.origin],
        len: 1 + ann.prepend as u32 + ann.poison.len() as u32,
        ann: ai,
    };

    // Phase 1: origin + customer routes climbing provider edges.
    let mut up: Vec<Option<RibEntry>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    let adopt = |slot: &mut Vec<Option<RibEntry>>,
                 heap: &mut BinaryHeap<QueueItem>,
                 u: AsIdx,
                 cand: RibEntry| {
        if slot[u.i()]
            .as_ref()
            .map(|cur| better(g, &cand, cur))
            .unwrap_or(true)
        {
            heap.push(QueueItem {
                len: cand.len,
                node: u,
            });
            slot[u.i()] = Some(cand);
        }
    };
    for (ai, ann) in anns.iter().enumerate() {
        let seed = seed_entry(ai, ann);
        // The origin records its own (best) route for reporting.
        if up[ann.origin.i()]
            .as_ref()
            .map(|cur| better(g, &seed, cur))
            .unwrap_or(true)
        {
            up[ann.origin.i()] = Some(seed.clone());
        }
        // Export to selected providers.
        for &p in g.providers(ann.origin) {
            if !ann.exports_to(p) || !acceptable(g, anns, &psets, p, &seed) {
                continue;
            }
            let cand = RibEntry {
                class: RouteClass::Customer,
                path: vec![p, ann.origin],
                len: seed.len + 1,
                ann: ai,
            };
            adopt(&mut up, &mut heap, p, cand);
        }
    }
    while let Some(QueueItem { len, node: u }) = heap.pop() {
        let Some(entry) = up[u.i()].clone() else {
            continue;
        };
        if entry.len != len || entry.class == RouteClass::Origin {
            continue; // stale heap item (origin exports were seeded above)
        }
        for &p in g.providers(u) {
            if !acceptable(g, anns, &psets, p, &entry) {
                continue;
            }
            let mut path = Vec::with_capacity(entry.path.len() + 1);
            path.push(p);
            path.extend_from_slice(&entry.path);
            let cand = RibEntry {
                class: RouteClass::Customer,
                path,
                len: entry.len + 1,
                ann: entry.ann,
            };
            adopt(&mut up, &mut heap, p, cand);
        }
    }

    // Phase 2: one peer hop. Only origin/customer routes cross peer
    // links. Origin exports honor each announcement's selection.
    let mut with_peer: Vec<Option<RibEntry>> = up.clone();
    let consider_peer = |with_peer: &mut Vec<Option<RibEntry>>, q: AsIdx, cand: RibEntry| {
        if with_peer[q.i()]
            .as_ref()
            .map(|cur| better(g, &cand, cur))
            .unwrap_or(true)
        {
            with_peer[q.i()] = Some(cand);
        }
    };
    for (ai, ann) in anns.iter().enumerate() {
        let seed = seed_entry(ai, ann);
        for &q in g.peers(ann.origin) {
            if !ann.exports_to(q) || !acceptable(g, anns, &psets, q, &seed) {
                continue;
            }
            let cand = RibEntry {
                class: RouteClass::Peer,
                path: vec![q, ann.origin],
                len: seed.len + 1,
                ann: ai,
            };
            consider_peer(&mut with_peer, q, cand);
        }
    }
    for u in g.indices() {
        let Some(entry) = up[u.i()].as_ref() else {
            continue;
        };
        if entry.class != RouteClass::Customer {
            continue;
        }
        for &q in g.peers(u) {
            if !acceptable(g, anns, &psets, q, entry) {
                continue;
            }
            let mut path = Vec::with_capacity(entry.path.len() + 1);
            path.push(q);
            path.extend_from_slice(&entry.path);
            let cand = RibEntry {
                class: RouteClass::Peer,
                path,
                len: entry.len + 1,
                ann: entry.ann,
            };
            consider_peer(&mut with_peer, q, cand);
        }
    }

    // Phase 3: descend customer edges (provider routes).
    let mut routes = with_peer;
    let mut heap = BinaryHeap::new();
    let adopt_down = |routes: &mut Vec<Option<RibEntry>>,
                      heap: &mut BinaryHeap<QueueItem>,
                      c: AsIdx,
                      cand: RibEntry| {
        if routes[c.i()]
            .as_ref()
            .map(|cur| better(g, &cand, cur))
            .unwrap_or(true)
        {
            heap.push(QueueItem {
                len: cand.len,
                node: c,
            });
            routes[c.i()] = Some(cand);
        }
    };
    for (ai, ann) in anns.iter().enumerate() {
        let seed = seed_entry(ai, ann);
        for &c in g.customers(ann.origin) {
            if !ann.exports_to(c) || !acceptable(g, anns, &psets, c, &seed) {
                continue;
            }
            let cand = RibEntry {
                class: RouteClass::Provider,
                path: vec![c, ann.origin],
                len: seed.len + 1,
                ann: ai,
            };
            adopt_down(&mut routes, &mut heap, c, cand);
        }
    }
    for u in g.indices() {
        if let Some(e) = routes[u.i()].as_ref() {
            if e.class != RouteClass::Origin {
                heap.push(QueueItem {
                    len: e.len,
                    node: u,
                });
            }
        }
    }
    while let Some(QueueItem { len, node: u }) = heap.pop() {
        let Some(entry) = routes[u.i()].clone() else {
            continue;
        };
        if entry.len != len || entry.class == RouteClass::Origin {
            continue;
        }
        for &c in g.customers(u) {
            if !acceptable(g, anns, &psets, c, &entry) {
                continue;
            }
            let mut path = Vec::with_capacity(entry.path.len() + 1);
            path.push(c);
            path.extend_from_slice(&entry.path);
            let cand = RibEntry {
                class: RouteClass::Provider,
                path,
                len: entry.len + 1,
                ann: entry.ann,
            };
            adopt_down(&mut routes, &mut heap, c, cand);
        }
    }
    PropagationResult { routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsInfo, AsKind, Relationship};

    /// A small test internet:
    ///
    /// ```text
    ///        t1a ===== t1b          (tier-1 peering)
    ///       /   \        \
    ///     tr1   tr2      tr3        (transits, customers of tier-1s)
    ///     /       \      /  \
    ///   s1         s2 ==+    s3     (s2 peers with tr3; stubs below)
    /// ```
    struct World {
        g: AsGraph,
        t1a: AsIdx,
        t1b: AsIdx,
        tr1: AsIdx,
        tr2: AsIdx,
        tr3: AsIdx,
        s1: AsIdx,
        s2: AsIdx,
        s3: AsIdx,
    }

    fn world() -> World {
        let mut g = AsGraph::new();
        let t1a = g.add_as(AsInfo::new(Asn(10), AsKind::Tier1));
        let t1b = g.add_as(AsInfo::new(Asn(11), AsKind::Tier1));
        let tr1 = g.add_as(AsInfo::new(Asn(20), AsKind::Transit));
        let tr2 = g.add_as(AsInfo::new(Asn(21), AsKind::Transit));
        let tr3 = g.add_as(AsInfo::new(Asn(22), AsKind::Transit));
        let s1 = g.add_as(AsInfo::new(Asn(30), AsKind::Stub));
        let s2 = g.add_as(AsInfo::new(Asn(31), AsKind::Stub));
        let s3 = g.add_as(AsInfo::new(Asn(32), AsKind::Stub));
        g.add_edge(t1a, t1b, Relationship::PeerToPeer);
        g.add_edge(tr1, t1a, Relationship::CustomerToProvider);
        g.add_edge(tr2, t1a, Relationship::CustomerToProvider);
        g.add_edge(tr3, t1b, Relationship::CustomerToProvider);
        g.add_edge(s1, tr1, Relationship::CustomerToProvider);
        g.add_edge(s2, tr2, Relationship::CustomerToProvider);
        g.add_edge(s3, tr3, Relationship::CustomerToProvider);
        g.add_edge(s2, tr3, Relationship::PeerToPeer);
        g.validate().unwrap();
        World {
            g,
            t1a,
            t1b,
            tr1,
            tr2,
            tr3,
            s1,
            s2,
            s3,
        }
    }

    fn pfx() -> Prefix {
        Prefix::v4(203, 0, 113, 0, 24)
    }

    #[test]
    fn everyone_reaches_a_stub_announcement() {
        let w = world();
        let r = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        assert_eq!(r.reach_count(), w.g.len());
        // Origin has class Origin.
        assert_eq!(r.route(w.s2).unwrap().class, RouteClass::Origin);
        // Its provider has a customer route.
        assert_eq!(r.route(w.tr2).unwrap().class, RouteClass::Customer);
        // Its peer tr3 has a peer route.
        assert_eq!(r.route(w.tr3).unwrap().class, RouteClass::Peer);
        // s1, far away, has a provider route.
        assert_eq!(r.route(w.s1).unwrap().class, RouteClass::Provider);
    }

    #[test]
    fn valley_free_paths_only() {
        // A peer route must never be exported onward to peers/providers:
        // t1b must reach s2 via its customer tr3? No: tr3 has a PEER route
        // to s2, which it must NOT export up to t1b. t1b must go via t1a.
        let w = world();
        let r = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        let path = r.path_asns(&w.g, w.t1b).unwrap();
        assert_eq!(
            path,
            vec![Asn(11), Asn(10), Asn(21), Asn(31)],
            "t1b must not use tr3's peer route"
        );
    }

    #[test]
    fn prefer_customer_over_peer_over_provider() {
        // tr3 hears s2 via peer (s2) and via provider (t1b<-t1a<-tr2).
        let w = world();
        let r = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        let e = r.route(w.tr3).unwrap();
        assert_eq!(e.class, RouteClass::Peer);
        assert_eq!(e.path, vec![w.tr3, w.s2]);
    }

    #[test]
    fn prepending_shifts_choice() {
        // s2 dual-homes by peering with tr3. s3 sits under tr3 and would
        // normally reach s2 through tr3's peer route (shortest). With
        // heavy prepending... the class still wins (peer route at tr3 is
        // about tr3's choice). Instead check a length-sensitive chooser:
        // t1a hears via customer tr2 (len 3). No alternative: prepending
        // doesn't change class ordering, so verify len accounting.
        let w = world();
        let plain = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        let pre = propagate(&w.g, &[Announcement::simple(w.s2, pfx()).prepended(3)]);
        assert_eq!(
            pre.route(w.t1a).unwrap().len,
            plain.route(w.t1a).unwrap().len + 3
        );
    }

    #[test]
    fn poisoning_diverts_around_an_as() {
        // Poison tr2: it must reject the route entirely; t1a then reaches
        // s2 only through... s2's other link is the peering with tr3,
        // which does not export to its provider t1b. So t1a loses the
        // route entirely, as do tr2, s1, t1b.
        let w = world();
        let r = propagate(
            &w.g,
            &[Announcement::simple(w.s2, pfx()).poisoned(vec![Asn(21)])],
        );
        assert!(r.route(w.tr2).is_none(), "poisoned AS rejects");
        assert!(r.route(w.t1a).is_none(), "no valley-free alternative");
        assert!(r.route(w.s1).is_none());
        // The peer still hears it directly.
        assert_eq!(r.route(w.tr3).unwrap().class, RouteClass::Peer);
        // And the peer's customer gets it as a provider route.
        assert_eq!(r.route(w.s3).unwrap().class, RouteClass::Provider);
    }

    #[test]
    fn selective_export_limits_propagation() {
        // s2 announces only to its peer tr3, not to provider tr2.
        let w = world();
        let r = propagate(
            &w.g,
            &[Announcement::simple(w.s2, pfx()).only_to(vec![w.tr3])],
        );
        assert!(r.route(w.tr2).is_none());
        assert!(r.route(w.t1a).is_none());
        assert_eq!(r.route(w.tr3).unwrap().class, RouteClass::Peer);
        assert_eq!(r.route(w.s3).unwrap().class, RouteClass::Provider);
        // The origin itself still has its own route.
        assert_eq!(r.route(w.s2).unwrap().class, RouteClass::Origin);
    }

    #[test]
    fn hijack_splits_the_internet() {
        // s3 hijacks s2's prefix. ASes near s3 believe s3.
        let w = world();
        let victim = Announcement::simple(w.s2, pfx());
        let attacker = Announcement::simple(w.s3, pfx());
        let r = propagate(&w.g, &[victim, attacker]);
        assert_eq!(
            r.route(w.tr3).unwrap().ann,
            1,
            "tr3 prefers its customer s3"
        );
        assert_eq!(
            r.route(w.tr2).unwrap().ann,
            0,
            "tr2 prefers its customer s2"
        );
        let total = r.won_by(0) + r.won_by(1);
        assert_eq!(total, r.reach_count());
        assert!(r.won_by(1) >= 2, "attacker captures at least tr3+s3");
    }

    #[test]
    fn anycast_prefers_nearest_instance() {
        // Announce from both s1 and s3 as the same "service".
        let w = world();
        let r = propagate(
            &w.g,
            &[
                Announcement::simple(w.s1, pfx()),
                Announcement::simple(w.s3, pfx()),
            ],
        );
        // tr1 goes to its customer s1; tr3 to its customer s3.
        assert_eq!(r.route(w.tr1).unwrap().ann, 0);
        assert_eq!(r.route(w.tr3).unwrap().ann, 1);
    }

    #[test]
    fn trace_and_blackhole() {
        let w = world();
        let r = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        match r.trace(w.s1, &BTreeSet::new()) {
            TraceOutcome::Delivered(path) => {
                assert_eq!(path.first(), Some(&w.s1));
                assert_eq!(path.last(), Some(&w.s2));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        let mut holes = BTreeSet::new();
        holes.insert(w.t1a);
        match r.trace(w.s1, &holes) {
            TraceOutcome::Dropped { at, path } => {
                assert_eq!(at, w.t1a);
                assert!(path.contains(&w.tr1));
            }
            other => panic!("expected drop, got {other:?}"),
        }
        let empty = propagate(&w.g, &[]);
        assert_eq!(empty.trace(w.s1, &BTreeSet::new()), TraceOutcome::NoRoute);
    }

    #[test]
    fn deterministic_tiebreaks() {
        let w = world();
        let a = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        let b = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        for u in w.g.indices() {
            assert_eq!(a.route(u), b.route(u));
        }
    }

    #[test]
    fn no_announcement_no_routes() {
        let w = world();
        let r = propagate(&w.g, &[]);
        assert_eq!(r.reach_count(), 0);
        assert!(r.iter().next().is_none());
    }

    #[test]
    fn paths_never_violate_loop_freedom() {
        let w = world();
        let r = propagate(&w.g, &[Announcement::simple(w.s2, pfx())]);
        for (_, e) in r.iter() {
            let mut seen = BTreeSet::new();
            for hop in &e.path {
                assert!(seen.insert(*hop), "loop in {:?}", e.path);
            }
        }
    }
}
