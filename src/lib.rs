//! # PEERING: An AS for Us — a full-system reproduction in Rust
//!
//! This workspace reproduces the PEERING testbed (Schlinker, Zarifis,
//! Cunha, Feamster, Katz-Bassett — HotNets-XIII, 2014): a platform that
//! lets researchers run their own autonomous systems, *pairing emulated
//! experiments with real interdomain network gateways*. Since the real
//! system's substrate — the live Internet — is not available here, the
//! reproduction builds that substrate too: a deterministic, seeded
//! simulation of the AS-level Internet, IXPs with route servers, a
//! from-scratch BGP implementation, and a MinineXt-style intradomain
//! emulator.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`netsim`] | discrete-event engine, links, IP data plane, RNG |
//! | [`bgp`] | BGP-4: wire codec, FSM, RIBs, decision, policy, damping, ADD-PATH, route-server mode |
//! | [`topology`] | AS-level Internet: relationships, Gao–Rexford propagation, cones, generator, Topology-Zoo PoPs |
//! | [`ixp`] | IXP: members, policies, route server, peering workflow, remote peering |
//! | [`emulation`] | MinineXt analog: containers, IGP, hosted daemons, placement |
//! | [`core`] | PEERING itself: servers, mux, clients, allocation, safety, experiments, monitoring |
//! | [`telemetry`] | sim-time observability: counters, gauges, log-2 histograms, events/spans, deterministic snapshots |
//! | [`collector`] | route collector: update provenance, MRT archives, propagation DAGs, the `peering-lg` looking glass |
//! | [`workloads`] | Alexa-style catalog, traffic, and the LIFEGUARD / PoiRoot / ARROW / PECAN / hijack / sBGP / anycast / decoy scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use peering::core::{Testbed, TestbedConfig};
//!
//! // Build a small Internet with PEERING deployed at one IXP and one
//! // university, provision an experiment, and announce its /24.
//! let mut tb = Testbed::build(TestbedConfig::small(42));
//! let id = tb.new_experiment("quickstart", "you", &[0, 1]).unwrap();
//! let client = tb.clients[&id].clone();
//! let reach = tb.announce(id, client.announce_everywhere()).unwrap();
//! assert!(reach > 0);
//! ```

pub use peering_bgp as bgp;
pub use peering_collector as collector;
pub use peering_core as core;
pub use peering_emulation as emulation;
pub use peering_ixp as ixp;
pub use peering_netsim as netsim;
pub use peering_telemetry as telemetry;
pub use peering_topology as topology;
pub use peering_workloads as workloads;

/// One-line import for the common researcher workflow: the testbed, the
/// experiment vocabulary, and the observation surface (monitor stream +
/// telemetry snapshots). `use peering::prelude::*;` is enough for most
/// examples and integration tests.
pub mod prelude {
    pub use peering_core::{
        AnnouncementSpec, ExperimentId, Monitor, PeerSelector, Portal, ProbeRecord, Proposal,
        ProvisionRequest, RequestId, RequestState, Schedule, ScheduledAction, SessionKind,
        SessionRecord, TelemetryEvent, Testbed, TestbedConfig, TestbedError, UpdateKind,
        UpdateRecord,
    };
    pub use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix, SimDuration, SimTime};
    pub use peering_telemetry::{Snapshot, Telemetry};
}
