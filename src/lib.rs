//! # PEERING: An AS for Us — a full-system reproduction in Rust
//!
//! This workspace reproduces the PEERING testbed (Schlinker, Zarifis,
//! Cunha, Feamster, Katz-Bassett — HotNets-XIII, 2014): a platform that
//! lets researchers run their own autonomous systems, *pairing emulated
//! experiments with real interdomain network gateways*. Since the real
//! system's substrate — the live Internet — is not available here, the
//! reproduction builds that substrate too: a deterministic, seeded
//! simulation of the AS-level Internet, IXPs with route servers, a
//! from-scratch BGP implementation, and a MinineXt-style intradomain
//! emulator.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`netsim`] | discrete-event engine, links, IP data plane, RNG |
//! | [`bgp`] | BGP-4: wire codec, FSM, RIBs, decision, policy, damping, ADD-PATH, route-server mode |
//! | [`topology`] | AS-level Internet: relationships, Gao–Rexford propagation, cones, generator, Topology-Zoo PoPs |
//! | [`ixp`] | IXP: members, policies, route server, peering workflow, remote peering |
//! | [`emulation`] | MinineXt analog: containers, IGP, hosted daemons, placement |
//! | [`core`] | PEERING itself: servers, mux, clients, allocation, safety, experiments, monitoring |
//! | [`workloads`] | Alexa-style catalog, traffic, and the LIFEGUARD / PoiRoot / ARROW / PECAN / hijack / sBGP / anycast / decoy scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use peering::core::{Testbed, TestbedConfig};
//!
//! // Build a small Internet with PEERING deployed at one IXP and one
//! // university, provision an experiment, and announce its /24.
//! let mut tb = Testbed::build(TestbedConfig::small(42));
//! let id = tb.new_experiment("quickstart", "you", &[0, 1]).unwrap();
//! let client = tb.clients[&id].clone();
//! let reach = tb.announce(id, client.announce_everywhere()).unwrap();
//! assert!(reach > 0);
//! ```

pub use peering_bgp as bgp;
pub use peering_core as core;
pub use peering_emulation as emulation;
pub use peering_ixp as ixp;
pub use peering_netsim as netsim;
pub use peering_topology as topology;
pub use peering_workloads as workloads;
