//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! `name in strategy` bindings, `prop_assert*`/`prop_assume`,
//! `prop_oneof!`, `Just`, range and tuple strategies, `any::<T>()`,
//! `collection::vec`, `option::of`, and the `prop_map`/`prop_flat_map`
//! combinators. Generation is deterministic per test (seeded from the test
//! name and case index) so failures reproduce run-to-run. Shrinking is not
//! implemented: a failing case reports the assertion message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed a generator; identical seeds give identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniformly random word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value below `bound` (rejection sampled; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner types (`Config`, `TestCaseError`).
pub mod test_runner {
    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 96 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// An input rejection with `msg`.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `f` (retry otherwise).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from weighted arms; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed mid-generation")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Uniform, matching real proptest's integer `any`.
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `Option<S::Value>` (`None` 1 time in 4).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// FNV-1a over the test name — the per-test base seed.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `case` for each of `cfg.cases` deterministic seeds, panicking on the
/// first failure. `prop_assume!` rejections are retried (bounded).
#[doc(hidden)]
pub fn __run_cases<F>(name: &str, cfg: &test_runner::Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let base = __seed_for(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    let max_rejects = cfg.cases as u64 * 16 + 256;
    while passed < cfg.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(index));
        index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected as u64 > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case #{passed} (seed {}): {msg}",
                    base.wrapping_add(index - 1)
                );
            }
        }
    }
}

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// keep PhantomData/fmt imports used
#[doc(hidden)]
pub type __Phantom = PhantomData<()>;

#[doc(hidden)]
pub fn __fmt_used(x: &dyn fmt::Debug) -> String {
    format!("{x:?}")
}

/// Property-test entry macro: see crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::__run_cases(stringify!($name), &cfg, |__pt_rng| {
                $crate::__pt_bind!(__pt_rng; $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
    };
    ($rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::__pt_bind!($rng; $($rest)*);
    };
}

/// Assert inside a property test; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Reject the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Choose uniformly (or by weight with `w => strategy`) among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($w as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 5u8..=9) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec((any::<u8>(), Just(7u8)), 1..5),
                               o in crate::option::of(0i32..3),
                               e in arb_even(),
                               pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|(_, j)| *j == 7));
            if let Some(x) = o { prop_assert!((0..3).contains(&x)); }
            prop_assert_eq!(e % 2, 0);
            prop_assert_ne!(pick, 0);
            prop_assume!(e != 4);
            prop_assert!(e != 4);
        }
    }
}
