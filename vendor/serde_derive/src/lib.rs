//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`): the input token stream is
//! walked directly to extract the type's shape — named-field structs,
//! tuple structs, unit structs, and enums whose variants are unit, tuple,
//! or struct-like. Generics and `#[serde(...)]` attributes are not
//! supported (this workspace uses neither); hitting one produces a
//! compile error naming the limitation.
//!
//! Generated code targets the value-tree model of the companion `serde`
//! stub: `Serialize::to_value` / `Deserialize::from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or enum variant payload.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Input {
    name: String,
    kind: Kind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attribute sequences (doc comments arrive as these).
    fn skip_attrs(&mut self) {
        loop {
            match (self.peek(), self.toks.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Count top-level items in a tuple body `(A, B<C, D>, E)` — commas at
/// angle-bracket depth zero delimit fields; `()`/`[]` groups are single
/// token trees so only `<`/`>` need depth tracking.
fn tuple_arity(g: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut saw_tokens = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            },
            _ => {}
        }
        saw_tokens = true;
    }
    // Trailing comma: `(A,)` counted one extra empty field.
    if !saw_tokens {
        fields -= 1;
    }
    fields
}

/// Extract field names from a named-field body `{ pub a: T, b: U }`.
fn named_fields(g: &proc_macro::Group) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(g.stream());
    let mut names = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        names.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        // Consume the type: tokens until a comma at angle depth zero.
        let mut depth = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    c.pos += 1;
                    break;
                }
                _ => {}
            }
            c.pos += 1;
        }
    }
    Ok(names)
}

fn parse_input(ts: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(ts);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive does not support generics on `{name}`"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                kind: Kind::Struct(Shape::Named(named_fields(&g)?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                kind: Kind::Struct(Shape::Tuple(tuple_arity(&g))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                kind: Kind::Struct(Shape::Unit),
            }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.skip_attrs();
                if vc.peek().is_none() {
                    break;
                }
                let vname = vc.expect_ident()?;
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = tuple_arity(g);
                        vc.pos += 1;
                        Shape::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = named_fields(g)?;
                        vc.pos += 1;
                        Shape::Named(fields)
                    }
                    _ => Shape::Unit,
                };
                // Skip an explicit discriminant (`= expr`) up to the comma.
                while let Some(t) = vc.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        vc.pos += 1;
                        break;
                    }
                    vc.pos += 1;
                }
                variants.push((vname, shape));
            }
            Ok(Input {
                name,
                kind: Kind::Enum(variants),
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// -------------------------------------------------------------- Serialize

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ------------------------------------------------------------ Deserialize

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) => Ok({name}({})),\n\
                     _ => Err(::serde::DeError::expected(\"sequence\")),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get({f:?}))?,"))
                .collect();
            format!("Ok({name} {{ {} }})", items.join(" "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                                 let items = match payload {{\n\
                                     ::serde::Value::Seq(items) => items,\n\
                                     _ => return Err(::serde::DeError::expected(\"variant payload sequence\")),\n\
                                 }};\n\
                                 return Ok({name}::{v}({}));\n\
                             }}",
                            items.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::Deserialize::from_value(payload.get({f:?}))?,"))
                            .collect();
                        Some(format!(
                            "{v:?} => return Ok({name}::{v} {{ {} }}),",
                            items.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "{{\n\
                     if let ::serde::Value::Str(s) = v {{\n\
                         match s.as_str() {{ {} _ => {{}} }}\n\
                     }}\n\
                     if let ::serde::Value::Map(m) = v {{\n\
                         if let Some((tag, payload)) = m.first() {{\n\
                             let _ = payload;\n\
                             match tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}\n\
                     Err(::serde::DeError::expected(\"variant of {name}\"))\n\
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (value-tree model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (value-tree model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
