//! Minimal offline stand-in for `serde_json`.
//!
//! Encodes the `serde` stub's [`serde::Value`] tree as JSON text
//! (`to_string` / `to_string_pretty`) and parses JSON back into a value
//! tree (`from_str`). Follows serde_json's conventions for the shapes the
//! stub's derive produces: externally tagged enums, newtype structs as
//! their inner value, `null` for `None`.

use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// A `Result` specialized to this crate's `Error`.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Ensure the token stays a valid JSON number (no `inf`, `NaN`).
        s
    } else {
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&number_to_string(*x)),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if pretty {
                        // newline added by pad below
                    } else {
                        // compact: no space, matching serde_json
                    }
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Serialize `value` into a value tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String> {
        if !self.eat("\"") {
            return Err(Error("expected string".into()));
        }
        let mut s = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                b => {
                    // Re-scan as UTF-8 from this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    s.push_str(chunk);
                    self.pos = end;
                    let _ = b;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.ws();
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.eat("]") {
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("]") {
                        return Ok(Value::Seq(items));
                    }
                    return Err(Error("expected ',' or ']'".into()));
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.ws();
                if self.eat("}") {
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    if !self.eat(":") {
                        return Err(Error("expected ':'".into()));
                    }
                    entries.push((k, self.value()?));
                    self.ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("}") {
                        return Ok(Value::Map(entries));
                    }
                    return Err(Error("expected ',' or '}'".into()));
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("bad number".into()))?;
                if text.contains(['.', 'e', 'E']) {
                    text.parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| Error(format!("bad number `{text}`")))
                } else if let Some(stripped) = text.strip_prefix('-') {
                    stripped
                        .parse::<u64>()
                        .map(|n| Value::I64(-(n as i64)))
                        .map_err(|_| Error(format!("bad number `{text}`")))
                } else {
                    text.parse::<u64>()
                        .map(Value::U64)
                        .map_err(|_| Error(format!("bad number `{text}`")))
                }
            }
            _ => Err(Error("unexpected token".into())),
        }
    }
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(Error("trailing characters".into()));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("mux\n7".into())),
            ("count".into(), Value::U64(12)),
            ("frac".into(), Value::F64(0.5)),
            (
                "items".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
        ]);
        let text = to_string(&DirectValue(v.clone())).unwrap();
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.value().unwrap(), v);
        let pretty = to_string_pretty(&DirectValue(v.clone())).unwrap();
        assert!(pretty.contains("\n"));
    }

    struct DirectValue(Value);

    impl serde::Serialize for DirectValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
