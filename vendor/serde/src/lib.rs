//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stub uses a concrete
//! value-tree model: `Serialize` renders a type into a [`Value`], and
//! `Deserialize` rebuilds a type from one. The derive macros (re-exported
//! from the companion `serde_derive` stub) generate those conversions for
//! plain structs and enums — which is all this workspace uses. The JSON
//! encoding produced by the companion `serde_json` stub follows serde's
//! conventions (externally tagged enums, newtype structs as their inner
//! value) so existing assertions about serialized output keep working.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree — the intermediate representation between
/// `Serialize` and a concrete format such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map of string keys to values.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in a map value; missing keys read as `Null` so that
    /// `Option` fields tolerate omission.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Map(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for an unexpected shape.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("smaller integer")),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("unsigned integer")),
                    _ => Err(DeError::expected("integer")),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("smaller integer")),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| DeError::expected("signed integer")),
                    _ => Err(DeError::expected("integer")),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers cannot hold u128 exactly; serialize as a string.
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("u128 string")),
            Value::U64(n) => Ok(*n as u128),
            _ => Err(DeError::expected("u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("float")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            _ => Err(DeError::expected("single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Real serde borrows from the input; this value-tree stub has
            // no backing buffer to borrow from, so intern by leaking. Only
            // static-str config tables use this — the leak is bounded.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null")),
        }
    }
}

// ------------------------------------------------------------- std::net

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("IPv4 address")),
            _ => Err(DeError::expected("IPv4 address string")),
        }
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("IPv6 address")),
            _ => Err(DeError::expected("IPv6 address string")),
        }
    }
}

impl Serialize for std::net::IpAddr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::IpAddr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(|_| DeError::expected("IP address")),
            _ => Err(DeError::expected("IP address string")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.get("secs"))?;
        let nanos = u32::from_value(v.get("nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| DeError::expected("fixed-size sequence"))
            }
            _ => Err(DeError::expected("fixed-size sequence")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $t::from_value(it.next().ok_or_else(|| DeError::expected("longer tuple"))?)?,
                        )+))
                    }
                    _ => Err(DeError::expected("tuple sequence")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    // String-keyed maps serialize as objects (serde_json's requirement);
    // other key types fall back to a sequence of `[key, value]` pairs.
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Map(m) => m
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|pair| <(K, V)>::from_value(pair))
            .collect(),
        _ => Err(DeError::expected("map")),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries::<K, V>(v).map(|e| e.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries::<K, V>(v).map(|e| e.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|e| e.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|e| e.into_iter().collect())
    }
}
