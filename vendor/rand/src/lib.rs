//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64 — the same
//! generator family the real `SmallRng` uses on 64-bit targets), the `Rng`
//! and `SeedableRng` traits, and `seq::SliceRandom`. Only the API subset
//! this workspace uses is implemented; distribution quality is good enough
//! for the statistical assertions in the test suite.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable over a range type.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform draw in `[low, low + range)` using rand 0.8's widening-multiply
/// ("Lemire") method with the bitmask zone, so random streams are
/// bit-identical to the real crate for the same xoshiro256++ word stream.
fn sample_inclusive_u64<G: RngCore + ?Sized>(rng: &mut G, low: u64, high: u64) -> u64 {
    debug_assert!(low <= high);
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full u64 domain.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let lo = m as u64;
        if lo <= zone {
            return low.wrapping_add((m >> 64) as u64);
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                sample_inclusive_u64(rng, self.start as u64, (self.end as u64).wrapping_sub(1)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                sample_inclusive_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // rand 0.8's UniformFloat::sample_single: draw in [1, 2) from the
        // top 52 bits, shift to [0, 1), then scale. Retry on the (rare)
        // rounding overflow instead of narrowing the scale.
        let scale = self.end - self.start;
        loop {
            let value1_2 = f64::from_bits(0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// A type drawable from the standard (uniform) distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Value from the standard distribution (`f64` in `[0,1)`, uniform ints).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::draw(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random-number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// xoshiro256++ — the small, fast generator family used by the real
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly pick a reference to one element, or `None` if empty.
        fn choose<G: RngCore + ?Sized>(&self, rng: &mut G) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<G: RngCore + ?Sized>(&self, rng: &mut G) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::sample_inclusive_u64(rng, 0, self.len() as u64 - 1) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = super::sample_inclusive_u64(rng, 0, i as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// `use rand::prelude::*` convenience.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut r = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(0u64..4) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
        let u: f64 = r.gen();
        assert!((0.0..1.0).contains(&u));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }
}
