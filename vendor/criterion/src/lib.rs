//! Minimal offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`, and
//! `black_box`. Each benchmark runs a handful of timed iterations and
//! prints a one-line median — enough to exercise the bench code paths and
//! give rough numbers, without criterion's statistics machinery.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark identifier (strings or `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: u32,
    last_ns: Option<u128>,
}

impl Bencher {
    /// Time `routine`, keeping the median of a few samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<u128> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.last_ns = times.get(times.len() / 2).copied();
    }
}

fn run_one(
    label: &str,
    samples: u32,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        last_ns: None,
    };
    f(&mut b);
    match b.last_ns {
        Some(ns) => {
            let extra = match throughput {
                Some(Throughput::Elements(n)) if ns > 0 => {
                    format!("  ({:.0} elem/s)", n as f64 / (ns as f64 / 1e9))
                }
                Some(Throughput::Bytes(n)) if ns > 0 => {
                    format!("  ({:.0} B/s)", n as f64 / (ns as f64 / 1e9))
                }
                _ => String::new(),
            };
            println!("bench {label:<50} {ns:>12} ns/iter{extra}");
        }
        None => println!("bench {label:<50} (no iterations)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the work done per iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).clamp(1, 20);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.samples, self.throughput, f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
    }

    /// Finish the group (no-op; matches the real API).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    samples: u32,
}

impl Criterion {
    fn effective_samples(&self) -> u32 {
        if self.samples == 0 {
            5
        } else {
            self.samples
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.effective_samples(), None, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.effective_samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _parent: self,
        }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
