//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements only the subset this workspace uses: `BytesMut` as a growable
//! byte buffer (backed by `Vec<u8>`), the `BufMut` write trait, and the
//! `Buf` read trait for `&[u8]` cursors. Semantics match the real crate
//! for this subset (big-endian integer accessors, panics on underflow).

use std::ops::{Deref, DerefMut};

/// Growable byte buffer, API-compatible subset of `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consume the buffer, yielding the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Freeze into an immutable `Vec<u8>` (the real crate returns `Bytes`).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<T: IntoIterator<Item = &'a u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Write-side trait: big-endian integer appends.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: big-endian integer reads that consume the cursor.
///
/// Like the real crate, reads panic if the buffer has too few bytes;
/// callers are expected to check `remaining()` first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Copy bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        self.advance(2);
        v
    }
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        self.advance(4);
        v
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.extend_from_slice(&[8, 9]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x04050607);
        r.advance(1);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.get_u8(), 9);
    }
}
