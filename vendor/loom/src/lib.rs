//! Offline stand-in for [`loom`](https://docs.rs/loom), the permutation
//! model checker for concurrent Rust.
//!
//! This environment builds without registry access, so the workspace
//! vendors the API subset it uses with matching semantics. The real
//! loom explores every interleaving of the closure passed to
//! [`model`]; this stand-in executes it once with genuine OS threads —
//! enough to keep the `loom`-gated tests compiling and running in CI,
//! and to leave the instrumentation seams (the `peering-netsim`
//! `sync` shim) in place so dropping in the real crate later requires
//! no source changes.

/// Run a concurrency model.
///
/// Real loom: exhaustively explores interleavings, failing on the
/// first panicking schedule. Stand-in: runs `f` once.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}

/// Synchronization primitives (std re-exports; real loom substitutes
/// instrumented versions).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomics (std re-exports).
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// Thread spawning (std re-exports; real loom substitutes a scheduler).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_closure() {
        use super::sync::atomic::{AtomicU32, Ordering};
        use super::sync::Arc;
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
